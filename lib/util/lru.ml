(* Classic doubly-linked list + hash table LRU. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type ('k, 'v) t = {
  capacity : int;
  on_evict : 'k -> 'v -> unit;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable first : ('k, 'v) node option; (* most recently used *)
  mutable last : ('k, 'v) node option;
  mutable hits : int;
  mutable misses : int;
}

let create ?(on_evict = fun _ _ -> ()) ~capacity () =
  if capacity < 1 then invalid_arg "Lru.create: capacity < 1";
  {
    capacity;
    on_evict;
    table = Hashtbl.create (2 * capacity);
    first = None;
    last = None;
    hits = 0;
    misses = 0;
  }

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.first <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.last <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.first;
  node.prev <- None;
  (match t.first with Some f -> f.prev <- Some node | None -> t.last <- Some node);
  t.first <- Some node

let find t k =
  match Hashtbl.find_opt t.table k with
  | None ->
      t.misses <- t.misses + 1;
      None
  | Some node ->
      t.hits <- t.hits + 1;
      unlink t node;
      push_front t node;
      Some node.value

let evict t =
  match t.last with
  | None -> ()
  | Some node ->
      (* Run the eviction callback before unlinking: if the write-back
         raises (ENOSPC, EBADF) the entry must stay resident — removing
         it first would silently drop the dirty data with no error
         surfaced. On a raise the map is left over capacity; the next
         [add] retries the eviction. *)
      t.on_evict node.key node.value;
      unlink t node;
      Hashtbl.remove t.table node.key

let add t k v =
  (match Hashtbl.find_opt t.table k with
  | Some node ->
      node.value <- v;
      unlink t node;
      push_front t node
  | None ->
      let node = { key = k; value = v; prev = None; next = None } in
      Hashtbl.replace t.table k node;
      push_front t node;
      (* A loop, not a single eviction: a previous eviction that failed
         leaves a backlog over capacity which drains here once the
         callback succeeds again. *)
      while Hashtbl.length t.table > t.capacity do
        evict t
      done);
  ()

(* Insert/replace without the eviction loop: segment users (the pager's
   striped buffer pool) run their own eviction policy — write-backs must
   happen outside the stripe lock, so an implicit synchronous eviction
   here would be a correctness bug, not a convenience. *)
let set t k v =
  match Hashtbl.find_opt t.table k with
  | Some node ->
      node.value <- v;
      unlink t node;
      push_front t node
  | None ->
      let node = { key = k; value = v; prev = None; next = None } in
      Hashtbl.replace t.table k node;
      push_front t node

let peek t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some node -> Some node.value

let peek_lru t =
  match t.last with None -> None | Some node -> Some (node.key, node.value)

let mem t k = Hashtbl.mem t.table k

let remove t k =
  match Hashtbl.find_opt t.table k with
  | None -> ()
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table k

let length t = Hashtbl.length t.table

let iter t f = Hashtbl.iter (fun k node -> f k node.value) t.table

let clear t =
  Hashtbl.reset t.table;
  t.first <- None;
  t.last <- None;
  t.hits <- 0;
  t.misses <- 0

let hits t = t.hits
let misses t = t.misses
