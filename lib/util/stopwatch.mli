(** Monotonic timing for the benchmark harness and the query service.

    Reads a monotonic clock, so intervals survive wall-clock
    adjustments; falls back to [Unix.gettimeofday] only when no
    monotonic source is available (guarded in one place). *)

type t

val now_ns : unit -> int64
(** Raw monotonic timestamp — only differences are meaningful. *)

val start : unit -> t
val elapsed_ns : t -> int64
val elapsed_ms : t -> float

val time_ns : (unit -> 'a) -> 'a * int64
(** [time_ns f] runs [f] once and reports its monotonic duration. *)
