(** A small LRU map with hit/miss accounting. *)

type ('k, 'v) t

val create : ?on_evict:('k -> 'v -> unit) -> capacity:int -> unit -> ('k, 'v) t
(** [on_evict] fires when a capacity overflow pushes the least recently
    used entry out (not on {!remove} or {!clear}) — buffer pools use it
    to write dirty pages back. The callback runs {e before} the entry
    is removed: if it raises, the entry stays resident (the map is
    temporarily over capacity) and the exception propagates to the
    {!add} that triggered the eviction, so a failed write-back never
    silently loses data. Raises [Invalid_argument] when
    [capacity < 1]. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Refreshes the entry's recency on a hit. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Inserts or replaces; evicts least recently used entries while the
    capacity is exceeded (normally one, plus any backlog left by an
    earlier eviction whose [on_evict] raised). *)

val set : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or replace {e without} evicting, leaving the map over
    capacity if need be — for callers that run their own eviction policy
    (the pager's stripe segments trim with {!peek_lru} + {!remove} so
    write-backs can happen outside the stripe lock). A {!set} map drains
    back to capacity on the next {!add}. *)

val peek : ('k, 'v) t -> 'k -> 'v option
(** {!find} without the recency refresh or the hit/miss accounting. *)

val peek_lru : ('k, 'v) t -> ('k * 'v) option
(** The least recently used entry, untouched. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Does not refresh recency. *)

val remove : ('k, 'v) t -> 'k -> unit

val iter : ('k, 'v) t -> ('k -> 'v -> unit) -> unit
(** Iterate over resident entries, unspecified order, without touching
    recency. *)

val length : ('k, 'v) t -> int
val clear : ('k, 'v) t -> unit

val hits : ('k, 'v) t -> int
val misses : ('k, 'v) t -> int
(** [find] outcomes since creation (or the last {!clear}). *)
