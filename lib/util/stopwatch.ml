(* Every clock read goes through [now_ns] so the choice of clock is
   guarded in exactly one place. The monotonic clock (a tiny C stub from
   bechamel) survives wall-clock adjustments — NTP steps must not bend
   server latency histograms or bench timings. If the stub is ever
   unavailable at runtime we degrade to gettimeofday, accepting its
   wall-clock semantics. *)
let now_ns =
  match Monotonic_clock.now () with
  | (_ : int64) -> Monotonic_clock.now
  | exception _ -> fun () -> Int64.of_float (Unix.gettimeofday () *. 1e9)

type t = { t0 : int64 }

let start () = { t0 = now_ns () }
let elapsed_ns t = Int64.sub (now_ns ()) t.t0
let elapsed_ms t = Int64.to_float (elapsed_ns t) /. 1e6

let time_ns f =
  let w = start () in
  let x = f () in
  (x, elapsed_ns w)
