(** The XML data model of the paper (Section 2.1): a collection
    [X = {d_1, ..., d_n}] is represented by the union graph
    [G_X = (V_X, E_X)] whose vertices are all elements of all documents
    and whose edges are the parent–child relations plus all intra- and
    inter-document links.

    Elements receive dense global node ids (documents in input order,
    preorder within a document), so every index works on plain integer
    graphs. *)

type link = { src : int; dst : int; inter : bool }
(** A resolved link edge between global nodes; [inter] is true when the
    endpoints belong to different documents. *)

type dangling = {
  src_doc : string;
  src_node : int;
  reference : string;  (** the unresolvable idref / href, verbatim *)
}

type t

val build : Xml_types.document list -> t
(** Builds [G_X]. Unresolvable references are collected (see
    {!dangling_refs}), not fatal — a Web collection always has dead
    links. Raises [Invalid_argument] on duplicate document names. *)

(** {1 Shape} *)

val n_nodes : t -> int
val n_docs : t -> int
val documents : t -> Xml_types.document list
(** The source documents, in collection order. *)

val graph : t -> Fx_graph.Digraph.t
(** Parent–child edges plus all link edges — the graph every connection
    index is built over. *)

val tree_graph : t -> Fx_graph.Digraph.t
(** Parent–child edges only. *)

val links : t -> link list
val n_intra_links : t -> int
val n_inter_links : t -> int
val dangling_refs : t -> dangling list

(** {1 Nodes} *)

val tag : t -> int array
(** Interned tag id per node. *)

val tag_id : t -> string -> int option
val tag_name : t -> int -> string
val n_tags : t -> int

val doc_of_node : t -> int -> int
val doc_name : t -> int -> string
val root_of_doc : t -> int -> int
val doc_of_name : t -> string -> int option

val element : t -> int -> Xml_types.element
(** The underlying element of a node (shared with the source document). *)

val node_of_anchor : t -> doc:string -> anchor:string -> int option
(** Global node carrying [id=anchor] in document [doc]. *)

val anchors : t -> ((string * string) * int) list
(** Every [(doc name, id)] anchor with its global node, in unspecified
    order — the serving catalog persists these so a disk-backed server
    can resolve [DESCENDANTS doc#anchor] without the collection. *)

val find_by_tag : t -> string -> int list
(** All nodes with the given tag, ascending. *)

val text_of_node : t -> int -> string
(** Direct text content of the node's element. *)

val describe : t -> int -> string
(** ["docname:/tag[, key=value]"] — human-readable node identification
    for CLI and example output. *)

val stats : t -> string
(** One-line summary: documents / elements / links, as the paper reports
    for its DBLP extract. *)
