module Digraph = Fx_graph.Digraph

type link = { src : int; dst : int; inter : bool }
type dangling = { src_doc : string; src_node : int; reference : string }

type t = {
  docs : Xml_types.document array;
  n_nodes : int;
  graph : Digraph.t;
  tree_graph : Digraph.t;
  tag : int array;
  tag_names : string array;
  tag_ids : (string, int) Hashtbl.t;
  doc_of_node : int array;
  root_of_doc : int array;
  doc_ids : (string, int) Hashtbl.t;
  elements : Xml_types.element array;
  anchor_tbl : (string * string, int) Hashtbl.t; (* (doc name, id) -> node *)
  links : link list;
  n_intra : int;
  n_inter : int;
  dangling : dangling list;
}

let build docs_list =
  let docs = Array.of_list docs_list in
  let n_docs = Array.length docs in
  let doc_ids = Hashtbl.create (2 * n_docs) in
  Array.iteri
    (fun i (d : Xml_types.document) ->
      if Hashtbl.mem doc_ids d.name then
        invalid_arg (Printf.sprintf "Collection.build: duplicate document name %S" d.name);
      Hashtbl.add doc_ids d.name i)
    docs;
  (* Number elements: documents in order, preorder inside a document. *)
  let doc_offset = Array.make (n_docs + 1) 0 in
  Array.iteri
    (fun i (d : Xml_types.document) ->
      doc_offset.(i + 1) <- doc_offset.(i) + Xml_types.count_elements d.root)
    docs;
  let n_nodes = doc_offset.(n_docs) in
  let tag = Array.make n_nodes 0 in
  let doc_of_node = Array.make n_nodes 0 in
  let elements = Array.make n_nodes (Xml_types.elt "_" []) in
  let tag_ids = Hashtbl.create 64 in
  let tag_names_rev = ref [] in
  let n_tag = ref 0 in
  let intern name =
    match Hashtbl.find_opt tag_ids name with
    | Some i -> i
    | None ->
        let i = !n_tag in
        incr n_tag;
        Hashtbl.add tag_ids name i;
        tag_names_rev := name :: !tag_names_rev;
        i
  in
  let tree_edges = ref [] in
  let root_of_doc = Array.make n_docs 0 in
  Array.iteri
    (fun d (doc : Xml_types.document) ->
      let counter = ref (doc_offset.(d) - 1) in
      root_of_doc.(d) <- doc_offset.(d);
      (* Recursive numbering so that parent ids are at hand for edges. *)
      let rec go (el : Xml_types.element) =
        incr counter;
        let me = !counter in
        tag.(me) <- intern el.tag;
        doc_of_node.(me) <- d;
        elements.(me) <- el;
        List.iter
          (function
            | Xml_types.Element c ->
                let child = go c in
                tree_edges := (me, child) :: !tree_edges
            | Xml_types.Text _ | Xml_types.Cdata _ | Xml_types.Comment _
            | Xml_types.Pi _ -> ())
          el.children;
        me
      in
      ignore (go doc.root))
    docs;
  (* Resolve links. *)
  let anchor_tbl = Hashtbl.create 256 in
  let raws = Array.map Link_resolver.scan docs in
  Array.iteri
    (fun d (raw : Link_resolver.raw) ->
      List.iter
        (fun (id, idx) ->
          let key = (docs.(d).Xml_types.name, id) in
          if not (Hashtbl.mem anchor_tbl key) then
            Hashtbl.add anchor_tbl key (doc_offset.(d) + idx))
        raw.anchors)
    raws;
  let links = ref [] and dangling = ref [] in
  let n_intra = ref 0 and n_inter = ref 0 in
  let add_link src dst =
    let inter = doc_of_node.(src) <> doc_of_node.(dst) in
    if inter then incr n_inter else incr n_intra;
    links := { src; dst; inter } :: !links
  in
  Array.iteri
    (fun d (raw : Link_resolver.raw) ->
      let dname = docs.(d).Xml_types.name in
      List.iter
        (fun (idx, id) ->
          let src = doc_offset.(d) + idx in
          match Hashtbl.find_opt anchor_tbl (dname, id) with
          | Some dst -> add_link src dst
          | None -> dangling := { src_doc = dname; src_node = src; reference = id } :: !dangling)
        raw.idrefs;
      List.iter
        (fun (idx, (href : Link_resolver.href)) ->
          let src = doc_offset.(d) + idx in
          let target_doc = Option.value ~default:dname href.doc in
          match (Hashtbl.find_opt doc_ids target_doc, href.anchor) with
          | None, _ ->
              let reference = target_doc ^ Option.fold ~none:"" ~some:(fun a -> "#" ^ a) href.anchor in
              dangling := { src_doc = dname; src_node = src; reference } :: !dangling
          | Some td, None -> add_link src root_of_doc.(td)
          | Some _, Some anchor -> begin
              match Hashtbl.find_opt anchor_tbl (target_doc, anchor) with
              | Some dst -> add_link src dst
              | None ->
                  dangling :=
                    { src_doc = dname; src_node = src; reference = target_doc ^ "#" ^ anchor }
                    :: !dangling
            end)
        raw.hrefs)
    raws;
  let links = List.rev !links in
  let tree_graph = Digraph.of_edges ~n:n_nodes !tree_edges in
  let all_edges = List.rev_append !tree_edges (List.map (fun l -> (l.src, l.dst)) links) in
  let graph = Digraph.of_edges ~n:n_nodes all_edges in
  {
    docs;
    n_nodes;
    graph;
    tree_graph;
    tag;
    tag_names = Array.of_list (List.rev !tag_names_rev);
    tag_ids;
    doc_of_node;
    root_of_doc;
    doc_ids;
    elements;
    anchor_tbl;
    links;
    n_intra = !n_intra;
    n_inter = !n_inter;
    dangling = List.rev !dangling;
  }

let n_nodes t = t.n_nodes
let n_docs t = Array.length t.docs
let documents t = Array.to_list t.docs
let graph t = t.graph
let tree_graph t = t.tree_graph
let links t = t.links
let n_intra_links t = t.n_intra
let n_inter_links t = t.n_inter
let dangling_refs t = t.dangling
let tag t = t.tag
let tag_id t name = Hashtbl.find_opt t.tag_ids name
let tag_name t i = t.tag_names.(i)
let n_tags t = Array.length t.tag_names
let doc_of_node t v = t.doc_of_node.(v)
let doc_name t d = t.docs.(d).Xml_types.name
let root_of_doc t d = t.root_of_doc.(d)
let doc_of_name t name = Hashtbl.find_opt t.doc_ids name
let element t v = t.elements.(v)

let node_of_anchor t ~doc ~anchor = Hashtbl.find_opt t.anchor_tbl (doc, anchor)

let anchors t = Hashtbl.fold (fun key node acc -> (key, node) :: acc) t.anchor_tbl []

let find_by_tag t name =
  match tag_id t name with
  | None -> []
  | Some id ->
      let acc = ref [] in
      for v = t.n_nodes - 1 downto 0 do
        if t.tag.(v) = id then acc := v :: !acc
      done;
      !acc

let text_of_node t v = Xml_types.direct_text t.elements.(v)

let describe t v =
  let el = t.elements.(v) in
  let key =
    match (Xml_types.attr el "key", Xml_types.attr el "id") with
    | Some k, _ -> Printf.sprintf ", key=%s" k
    | None, Some id -> Printf.sprintf ", id=%s" id
    | None, None -> ""
  in
  Printf.sprintf "%s:/%s[node %d%s]" (doc_name t t.doc_of_node.(v)) el.tag v key

let stats t =
  Printf.sprintf "%d documents, %d elements, %d links (%d intra, %d inter), %d tag names%s"
    (n_docs t) t.n_nodes (t.n_intra + t.n_inter) t.n_intra t.n_inter
    (Array.length t.tag_names)
    (if t.dangling = [] then "" else Printf.sprintf ", %d dangling refs" (List.length t.dangling))
