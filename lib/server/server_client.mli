(** Blocking client for the FliX query service — the counterpart of
    {!Server} used by the examples, the tests, and the bench harness.

    One request is in flight per client at a time; use one client per
    thread for concurrent load. All calls return [Error _] on protocol
    violations or transport failures; server-side [ERR] and [BUSY]
    surface as dedicated variants so callers can distinguish semantic
    rejection from a broken connection. *)

type t

type 'a reply =
  | Value of 'a
  | Busy            (** admission control rejected the request *)
  | Server_error of string  (** the server answered [ERR <msg>] *)

val connect : ?host:string -> port:int -> unit -> t
(** Raises [Unix.Unix_error] when the connection fails. *)

val close : t -> unit

val ping : t -> bool
(** [true] on [PONG]; [false] on any failure (never raises). *)

val sleep : t -> int -> (bool reply, string) result
(** Diagnostic verb; [Value true] when the nap completed, [Value false]
    when the deadline cut it short. *)

val descendants :
  t ->
  doc:string ->
  ?anchor:string ->
  ?tag:string ->
  ?max_dist:int ->
  k:int ->
  unit ->
  ((Protocol.item list * bool) reply, string) result
(** The items and whether the stream was cut off by the deadline. *)

val evaluate :
  t ->
  start_tag:string ->
  target_tag:string ->
  ?max_dist:int ->
  k:int ->
  unit ->
  ((Protocol.item list * bool) reply, string) result

val connected :
  t -> ?max_dist:int -> int -> int -> (int option reply, string) result

val stats : t -> (string list reply, string) result
val metrics : t -> (string list reply, string) result

val request : t -> Protocol.request -> (Protocol.response, string) result
(** Escape hatch: send any request and read one response. *)
