(** Blocking client for the FliX query service — the counterpart of
    {!Server} used by the examples, the tests, the bench harness, and
    the sharded coordinator's per-shard connections.

    One request is in flight per client at a time; use one client per
    thread for concurrent load. All calls return [Error _] on protocol
    violations or transport failures; server-side [ERR] and [BUSY]
    surface as dedicated variants so callers can distinguish semantic
    rejection from a broken connection. *)

type t

type 'a reply =
  | Value of 'a
  | Busy            (** admission control rejected the request *)
  | Server_error of string  (** the server answered [ERR <msg>] *)

val connect : ?host:string -> ?recv_timeout:float -> port:int -> unit -> t
(** Raises [Unix.Unix_error] when the connection fails. [recv_timeout]
    (seconds) bounds every socket read; see {!set_recv_timeout}. *)

val set_recv_timeout : t -> float option -> unit
(** Bound each socket read to the given number of seconds
    ([SO_RCVTIMEO]; [None] restores blocking reads). When the timeout
    trips, the in-flight call returns [Error "connection closed
    mid-response"] instead of blocking forever — a hung shard cannot
    wedge the coordinator's connection pool. The connection must be
    {!close}d afterwards: a late response would desynchronize the
    framing. Silently a no-op on platforms without the socket option. *)

val close : t -> unit

val ping : t -> bool
(** [true] on [PONG]; [false] on any failure (never raises). *)

val sleep : t -> int -> (bool reply, string) result
(** Diagnostic verb; [Value true] when the nap completed, [Value false]
    when the deadline cut it short. *)

val descendants :
  t ->
  doc:string ->
  ?anchor:string ->
  ?tag:string ->
  ?max_dist:int ->
  k:int ->
  unit ->
  ((Protocol.item list * bool) reply, string) result
(** The items and whether the stream was cut off by the deadline. *)

val evaluate :
  t ->
  start_tag:string ->
  target_tag:string ->
  ?max_dist:int ->
  k:int ->
  unit ->
  ((Protocol.item list * bool) reply, string) result

val connected :
  t -> ?max_dist:int -> int -> int -> (int option reply, string) result

val stats : t -> (string list reply, string) result
val metrics : t -> (string list reply, string) result

val epoch : t -> (int reply, string) result
(** The server's serving snapshot epoch ([EPOCH]). *)

val evict : t -> string list -> (int reply, string) result
(** Remove documents by name; [Value e] is the new epoch. *)

val reload : t -> (int reply, string) result
(** Ask the server to re-read its deployment; [Value e] is the new
    epoch. *)

val ingest : t -> (string * string) list -> (int reply, string) result
(** [ingest t [(name, xml); ...]] sends one [INGEST] envelope (each
    document body is split on newlines into its [DOC] frame) and reads
    the answer; [Value e] is the new epoch after the swap. *)

val request :
  ?deadline_ms:int -> t -> Protocol.request -> (Protocol.response, string) result
(** Escape hatch: send any request (optionally with a [DEADLINE <ms>]
    envelope) and read one response. *)

val request_stream :
  ?deadline_ms:int ->
  t ->
  Protocol.request ->
  on_item:(Protocol.item -> unit) ->
  (Protocol.response, string) result
(** Like {!request}, but delivers [ITEM] lines through [on_item] as
    they arrive — the consuming side of the server's incremental
    flushing, used by the coordinator's k-way merge. The returned
    [Items] carries an empty list; see {!Protocol.read_item_stream}. *)

val request_batch :
  ?deadline_ms:int ->
  t ->
  Protocol.request array ->
  on_response:(int -> Protocol.response -> unit) ->
  (unit, string) result
(** Pipelined [BATCH]: writes the header and every sub-request in one
    flush, then reads the [SUB]-tagged answers, delivering each through
    [on_response index response] in completion order. On a transport
    failure mid-batch the already-delivered answers stand — the
    retrying caller ({!Fx_shard.Shard_client.call_many}) re-sends only
    the unanswered sub-requests. An empty array is a no-op. *)

val request_many :
  ?deadline_ms:int ->
  t ->
  Protocol.request array ->
  (Protocol.response array, string) result
(** {!request_batch} buffered: the [n] responses in request order, or
    the first transport/framing error. *)
