(** A bounded multi-producer/multi-consumer queue — the admission-control
    point of the query service.

    Producers never block: {!try_push} fails immediately when the queue
    is at capacity, so a saturated server answers [BUSY] instead of
    building an unbounded backlog. Consumers block in {!pop} until work
    arrives or the queue is closed. Safe across domains and threads
    (mutex + condition variable). *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] when [capacity < 1]. *)

val try_push : 'a t -> 'a -> bool
(** [false] when the queue is full or closed — the caller should reject
    the request. Never blocks. *)

val pop : 'a t -> 'a option
(** Blocks until an element is available; [None] once the queue is
    closed {e and} drained — the consumer's signal to exit. *)

val close : 'a t -> unit
(** Rejects further pushes and wakes all blocked consumers. Elements
    already queued are still delivered. Idempotent. *)

val length : 'a t -> int
val capacity : 'a t -> int
