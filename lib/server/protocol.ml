type request =
  | Ping
  | Stats
  | Metrics
  | Sleep of int
  | Descendants of {
      doc : string;
      anchor : string option;
      tag : string option;
      k : int;
      max_dist : int option;
    }
  | Connected of { a : int; b : int; max_dist : int option }
  | Evaluate of {
      start_tag : string;
      target_tag : string;
      k : int;
      max_dist : int option;
    }

type item = { node : int; dist : int; meta : int }

type response =
  | Pong
  | Ok_done
  | Busy
  | Err of string
  | Dist of int option
  | Items of { items : item list; timed_out : bool }
  | Lines of string list

let verb = function
  | Ping -> "ping"
  | Stats -> "stats"
  | Metrics -> "metrics"
  | Sleep _ -> "sleep"
  | Descendants _ -> "descendants"
  | Connected _ -> "connected"
  | Evaluate _ -> "evaluate"

let pool_bound = function
  | Ping | Metrics -> false
  | Stats | Sleep _ | Descendants _ | Connected _ | Evaluate _ -> true

(* --- requests ------------------------------------------------------- *)

let opt_field = function None -> "-" | Some s -> s
let parse_opt_field = function "-" -> None | s -> Some s

let int_of ~what s =
  match int_of_string_opt s with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "%s must be an integer, got %S" what s)

let ( let* ) = Result.bind

(* [k] is a result cap: accept any positive count. *)
let positive ~what n =
  if n > 0 then Ok n else Error (Printf.sprintf "%s must be positive" what)

let non_negative ~what n =
  if n >= 0 then Ok n else Error (Printf.sprintf "%s must be >= 0" what)

let parse_max_dist = function
  | [] -> Ok None
  | [ s ] ->
      let* d = int_of ~what:"max_dist" s in
      let* d = non_negative ~what:"max_dist" d in
      Ok (Some d)
  | _ -> Error "trailing tokens after max_dist"

let parse_request line =
  let tokens =
    List.filter (fun t -> t <> "") (String.split_on_char ' ' (String.trim line))
  in
  match tokens with
  | [] -> Error "empty request"
  | cmd :: args -> (
      match (String.uppercase_ascii cmd, args) with
      | "PING", [] -> Ok Ping
      | "STATS", [] -> Ok Stats
      | "METRICS", [] -> Ok Metrics
      | "SLEEP", [ ms ] ->
          let* ms = int_of ~what:"ms" ms in
          let* ms = non_negative ~what:"ms" ms in
          Ok (Sleep ms)
      | "DESCENDANTS", doc :: anchor :: tag :: k :: rest ->
          let* k = int_of ~what:"k" k in
          let* k = positive ~what:"k" k in
          let* max_dist = parse_max_dist rest in
          Ok
            (Descendants
               {
                 doc;
                 anchor = parse_opt_field anchor;
                 tag = parse_opt_field tag;
                 k;
                 max_dist;
               })
      | "CONNECTED", a :: b :: rest ->
          let* a = int_of ~what:"a" a in
          let* b = int_of ~what:"b" b in
          let* max_dist = parse_max_dist rest in
          Ok (Connected { a; b; max_dist })
      | "EVALUATE", start_tag :: target_tag :: k :: rest ->
          let* k = int_of ~what:"k" k in
          let* k = positive ~what:"k" k in
          let* max_dist = parse_max_dist rest in
          Ok (Evaluate { start_tag; target_tag; k; max_dist })
      | ("PING" | "STATS" | "METRICS" | "SLEEP" | "DESCENDANTS" | "CONNECTED" | "EVALUATE"), _
        ->
          Error (Printf.sprintf "wrong number of arguments for %s" cmd)
      | _ -> Error (Printf.sprintf "unknown verb %S" cmd))

let request_line r =
  let md = function None -> "" | Some d -> " " ^ string_of_int d in
  match r with
  | Ping -> "PING"
  | Stats -> "STATS"
  | Metrics -> "METRICS"
  | Sleep ms -> Printf.sprintf "SLEEP %d" ms
  | Descendants { doc; anchor; tag; k; max_dist } ->
      Printf.sprintf "DESCENDANTS %s %s %s %d%s" doc (opt_field anchor)
        (opt_field tag) k (md max_dist)
  | Connected { a; b; max_dist } -> Printf.sprintf "CONNECTED %d %d%s" a b (md max_dist)
  | Evaluate { start_tag; target_tag; k; max_dist } ->
      Printf.sprintf "EVALUATE %s %s %d%s" start_tag target_tag k (md max_dist)

(* --- responses ------------------------------------------------------ *)

let response_lines = function
  | Pong -> [ "PONG" ]
  | Ok_done -> [ "OK" ]
  | Busy -> [ "BUSY" ]
  | Err msg ->
      (* The message must stay on one line to keep the framing intact. *)
      [ "ERR " ^ String.map (function '\n' | '\r' -> ' ' | c -> c) msg ]
  | Dist None -> [ "NODIST" ]
  | Dist (Some d) -> [ Printf.sprintf "DIST %d" d ]
  | Items { items; timed_out } ->
      List.map
        (fun { node; dist; meta } -> Printf.sprintf "ITEM %d %d %d" node dist meta)
        items
      @ [ Printf.sprintf "%s %d" (if timed_out then "TIMEOUT" else "DONE")
            (List.length items) ]
  | Lines payload ->
      Printf.sprintf "LINES %d" (List.length payload) :: payload

let read_response read_line =
  (* One line of pushback so the first ITEM/DONE line can be re-examined
     by the item-stream loop. *)
  let pending = ref None in
  let read_line () =
    match !pending with
    | Some l ->
        pending := None;
        Some l
    | None -> read_line ()
  in
  let rec items acc =
    match read_line () with
    | None -> Error "connection closed mid-response"
    | Some line -> (
        match String.split_on_char ' ' line with
        | [ "ITEM"; node; dist; meta ] -> (
            match
              (int_of_string_opt node, int_of_string_opt dist, int_of_string_opt meta)
            with
            | Some node, Some dist, Some meta -> items ({ node; dist; meta } :: acc)
            | _ -> Error (Printf.sprintf "malformed ITEM line %S" line))
        | [ "DONE"; n ] when int_of_string_opt n = Some (List.length acc) ->
            Ok (Items { items = List.rev acc; timed_out = false })
        | [ "TIMEOUT"; n ] when int_of_string_opt n = Some (List.length acc) ->
            Ok (Items { items = List.rev acc; timed_out = true })
        | ("DONE" | "TIMEOUT") :: _ ->
            Error (Printf.sprintf "trailer count mismatch in %S" line)
        | _ -> Error (Printf.sprintf "unexpected line %S in item stream" line))
  in
  let rec raw_lines n acc =
    if n = 0 then Ok (Lines (List.rev acc))
    else
      match read_line () with
      | None -> Error "connection closed mid-payload"
      | Some line -> raw_lines (n - 1) (line :: acc)
  in
  match read_line () with
  | None -> Error "connection closed"
  | Some line -> (
      match String.split_on_char ' ' line with
      | [ "PONG" ] -> Ok Pong
      | [ "OK" ] -> Ok Ok_done
      | [ "BUSY" ] -> Ok Busy
      | "ERR" :: _ ->
          let msg =
            if String.length line > 4 then String.sub line 4 (String.length line - 4)
            else ""
          in
          Ok (Err msg)
      | [ "NODIST" ] -> Ok (Dist None)
      | [ "DIST"; d ] -> (
          match int_of_string_opt d with
          | Some d -> Ok (Dist (Some d))
          | None -> Error (Printf.sprintf "malformed DIST line %S" line))
      | [ "LINES"; n ] -> (
          match int_of_string_opt n with
          | Some n when n >= 0 -> raw_lines n []
          | _ -> Error (Printf.sprintf "malformed LINES header %S" line))
      | ("ITEM" | "DONE" | "TIMEOUT") :: _ ->
          pending := Some line;
          items []
      | _ -> Error (Printf.sprintf "unexpected response line %S" line))
