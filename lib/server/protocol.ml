type request =
  | Ping
  | Stats
  | Metrics
  | Sleep of int
  | Descendants of {
      doc : string;
      anchor : string option;
      tag : string option;
      k : int;
      max_dist : int option;
    }
  | Node_descendants of { node : int; tag : string option; k : int; max_dist : int option }
  | Ancestors of { node : int; tag : string option; k : int; max_dist : int option }
  | Connected of { a : int; b : int; max_dist : int option }
  | Evaluate of {
      start_tag : string;
      target_tag : string;
      k : int;
      max_dist : int option;
    }
  | Resolve of { doc : string; anchor : string option }
  | Evict of string list
  | Reload
  | Epoch_query

type item = { node : int; dist : int; meta : int }

type response =
  | Pong
  | Ok_done
  | Busy
  | Err of string
  | Dist of int option
  | Items of { items : item list; timed_out : bool; partial : bool }
  | Lines of string list
  | Epoch of int

type envelope = { deadline_ms : int option; req : request }

let verb = function
  | Ping -> "ping"
  | Stats -> "stats"
  | Metrics -> "metrics"
  | Sleep _ -> "sleep"
  | Descendants _ | Node_descendants _ -> "descendants"
  | Ancestors _ -> "ancestors"
  | Connected _ -> "connected"
  | Evaluate _ -> "evaluate"
  | Resolve _ -> "resolve"
  | Evict _ -> "evict"
  | Reload -> "reload"
  | Epoch_query -> "epoch"

(* The admin verbs run on the connection thread (serialized by the
   server's admin lock), not through the worker pool: a reload may take
   seconds and must not occupy a query worker. *)
let pool_bound = function
  | Ping | Metrics | Evict _ | Reload | Epoch_query -> false
  | Stats | Sleep _ | Descendants _ | Node_descendants _ | Ancestors _ | Connected _
  | Evaluate _ | Resolve _ ->
      true

(* The probe verbs a BATCH envelope may carry. SLEEP rides along as the
   diagnostic stand-in for a slow sub-request, exactly as it does for
   single requests. *)
let batch_allowed = function
  | Connected _ | Node_descendants _ | Ancestors _ | Resolve _ | Sleep _ -> true
  | Ping | Stats | Metrics | Descendants _ | Evaluate _ | Evict _ | Reload | Epoch_query
    ->
      false

let streams_items = function
  | Descendants _ | Node_descendants _ | Ancestors _ | Evaluate _ -> true
  | Ping | Stats | Metrics | Sleep _ | Connected _ | Resolve _ | Evict _ | Reload
  | Epoch_query ->
      false

(* --- requests ------------------------------------------------------- *)

let opt_field = function None -> "-" | Some s -> s
let parse_opt_field = function "-" -> None | s -> Some s

let int_of ~what s =
  match int_of_string_opt s with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "%s must be an integer, got %S" what s)

let ( let* ) = Result.bind

(* [k] is a result cap: accept any positive count. *)
let positive ~what n =
  if n > 0 then Ok n else Error (Printf.sprintf "%s must be positive" what)

let non_negative ~what n =
  if n >= 0 then Ok n else Error (Printf.sprintf "%s must be >= 0" what)

let parse_max_dist = function
  | [] -> Ok None
  | [ s ] ->
      let* d = int_of ~what:"max_dist" s in
      let* d = non_negative ~what:"max_dist" d in
      Ok (Some d)
  | _ -> Error "trailing tokens after max_dist"

(* The shared <node> <tag|-> <k> [max] argument shape of the
   node-addressed stream verbs. *)
let parse_node_stream ~make node tag k rest =
  let* node = int_of ~what:"node" node in
  let* node = non_negative ~what:"node" node in
  let* k = int_of ~what:"k" k in
  let* k = positive ~what:"k" k in
  let* max_dist = parse_max_dist rest in
  Ok (make ~node ~tag:(parse_opt_field tag) ~k ~max_dist)

let parse_tokens tokens =
  match tokens with
  | [] -> Error "empty request"
  | cmd :: args -> (
      match (String.uppercase_ascii cmd, args) with
      | "PING", [] -> Ok Ping
      | "STATS", [] -> Ok Stats
      | "METRICS", [] -> Ok Metrics
      | "SLEEP", [ ms ] ->
          let* ms = int_of ~what:"ms" ms in
          let* ms = non_negative ~what:"ms" ms in
          Ok (Sleep ms)
      | "DESCENDANTS", doc :: anchor :: tag :: k :: rest ->
          let* k = int_of ~what:"k" k in
          let* k = positive ~what:"k" k in
          let* max_dist = parse_max_dist rest in
          Ok
            (Descendants
               {
                 doc;
                 anchor = parse_opt_field anchor;
                 tag = parse_opt_field tag;
                 k;
                 max_dist;
               })
      | "NDESCENDANTS", node :: tag :: k :: rest ->
          parse_node_stream node tag k rest ~make:(fun ~node ~tag ~k ~max_dist ->
              Node_descendants { node; tag; k; max_dist })
      | "ANCESTORS", node :: tag :: k :: rest ->
          parse_node_stream node tag k rest ~make:(fun ~node ~tag ~k ~max_dist ->
              Ancestors { node; tag; k; max_dist })
      | "CONNECTED", a :: b :: rest ->
          let* a = int_of ~what:"a" a in
          let* b = int_of ~what:"b" b in
          let* max_dist = parse_max_dist rest in
          Ok (Connected { a; b; max_dist })
      | "EVALUATE", start_tag :: target_tag :: k :: rest ->
          let* k = int_of ~what:"k" k in
          let* k = positive ~what:"k" k in
          let* max_dist = parse_max_dist rest in
          Ok (Evaluate { start_tag; target_tag; k; max_dist })
      | "RESOLVE", [ doc; anchor ] ->
          Ok (Resolve { doc; anchor = parse_opt_field anchor })
      | "EVICT", (_ :: _ as docs) -> Ok (Evict docs)
      | "RELOAD", [] -> Ok Reload
      | "EPOCH", [] -> Ok Epoch_query
      | ( ( "PING" | "STATS" | "METRICS" | "SLEEP" | "DESCENDANTS" | "NDESCENDANTS"
          | "ANCESTORS" | "CONNECTED" | "EVALUATE" | "RESOLVE" | "EVICT" | "RELOAD"
          | "EPOCH" ),
          _ ) ->
          Error (Printf.sprintf "wrong number of arguments for %s" cmd)
      | _ -> Error (Printf.sprintf "unknown verb %S" cmd))

let tokenize line =
  List.filter (fun t -> t <> "") (String.split_on_char ' ' (String.trim line))

let parse_envelope line =
  match tokenize line with
  | cmd :: ms :: rest when String.uppercase_ascii cmd = "DEADLINE" ->
      let* ms = int_of ~what:"deadline ms" ms in
      let* ms = non_negative ~what:"deadline ms" ms in
      let* req = parse_tokens rest in
      Ok { deadline_ms = Some ms; req }
  | tokens ->
      let* req = parse_tokens tokens in
      Ok { deadline_ms = None; req }

let parse_request line = Result.map (fun e -> e.req) (parse_envelope line)

(* --- batches -------------------------------------------------------- *)

type framed =
  | Single of envelope
  | Batch of { deadline_ms : int option; n : int }
  | Ingest of { n : int }

(* A request line is either a plain envelope or a BATCH/INGEST header
   announcing sub-lines to follow. The DEADLINE prefix composes with
   plain requests and batches and covers the whole batch; an ingest is
   an administrative operation that takes as long as the index build
   takes. *)
let parse_framed line =
  let batch deadline_ms n =
    let* n = int_of ~what:"batch size" n in
    let* n = positive ~what:"batch size" n in
    Ok (Batch { deadline_ms; n })
  in
  match tokenize line with
  | [ cmd; n ] when String.uppercase_ascii cmd = "BATCH" -> batch None n
  | [ cmd; n ] when String.uppercase_ascii cmd = "INGEST" ->
      let* n = int_of ~what:"ingest count" n in
      let* n = positive ~what:"ingest count" n in
      Ok (Ingest { n })
  | [ cmd; ms; batch_kw; n ]
    when String.uppercase_ascii cmd = "DEADLINE"
         && String.uppercase_ascii batch_kw = "BATCH" ->
      let* ms = int_of ~what:"deadline ms" ms in
      let* ms = non_negative ~what:"deadline ms" ms in
      batch (Some ms) n
  | _ ->
      let* e = parse_envelope line in
      Ok (Single e)

let batch_line ?deadline_ms n =
  match deadline_ms with
  | None -> Printf.sprintf "BATCH %d" n
  | Some ms -> Printf.sprintf "DEADLINE %d BATCH %d" ms n

let sub_line i = Printf.sprintf "SUB %d" i

(* --- ingest document frames ---------------------------------------- *)

let ingest_line n = Printf.sprintf "INGEST %d" n

let doc_line ~name ~n_lines = Printf.sprintf "DOC %s %d" name n_lines

(* Document names are single tokens, like everywhere else on this
   protocol (DESCENDANTS <doc>, RESOLVE <doc>). *)
let parse_doc_line line =
  match tokenize line with
  | [ cmd; name; n ] when String.uppercase_ascii cmd = "DOC" ->
      let* n = int_of ~what:"document line count" n in
      let* n = non_negative ~what:"document line count" n in
      Ok (name, n)
  | _ -> Error (Printf.sprintf "expected DOC <name> <lines> header, got %S" line)

let request_line r =
  let md = function None -> "" | Some d -> " " ^ string_of_int d in
  match r with
  | Ping -> "PING"
  | Stats -> "STATS"
  | Metrics -> "METRICS"
  | Sleep ms -> Printf.sprintf "SLEEP %d" ms
  | Descendants { doc; anchor; tag; k; max_dist } ->
      Printf.sprintf "DESCENDANTS %s %s %s %d%s" doc (opt_field anchor)
        (opt_field tag) k (md max_dist)
  | Node_descendants { node; tag; k; max_dist } ->
      Printf.sprintf "NDESCENDANTS %d %s %d%s" node (opt_field tag) k (md max_dist)
  | Ancestors { node; tag; k; max_dist } ->
      Printf.sprintf "ANCESTORS %d %s %d%s" node (opt_field tag) k (md max_dist)
  | Connected { a; b; max_dist } -> Printf.sprintf "CONNECTED %d %d%s" a b (md max_dist)
  | Evaluate { start_tag; target_tag; k; max_dist } ->
      Printf.sprintf "EVALUATE %s %s %d%s" start_tag target_tag k (md max_dist)
  | Resolve { doc; anchor } -> Printf.sprintf "RESOLVE %s %s" doc (opt_field anchor)
  | Evict docs -> "EVICT " ^ String.concat " " docs
  | Reload -> "RELOAD"
  | Epoch_query -> "EPOCH"

let envelope_line ?deadline_ms r =
  match deadline_ms with
  | None -> request_line r
  | Some ms -> Printf.sprintf "DEADLINE %d %s" ms (request_line r)

(* --- responses ------------------------------------------------------ *)

let item_line { node; dist; meta } = Printf.sprintf "ITEM %d %d %d" node dist meta

let items_trailer ~count ~timed_out ~partial =
  let word = if timed_out then "TIMEOUT" else if partial then "PARTIAL" else "DONE" in
  Printf.sprintf "%s %d" word count

let response_lines = function
  | Pong -> [ "PONG" ]
  | Ok_done -> [ "OK" ]
  | Busy -> [ "BUSY" ]
  | Err msg ->
      (* The message must stay on one line to keep the framing intact. *)
      [ "ERR " ^ String.map (function '\n' | '\r' -> ' ' | c -> c) msg ]
  | Dist None -> [ "NODIST" ]
  | Dist (Some d) -> [ Printf.sprintf "DIST %d" d ]
  | Items { items; timed_out; partial } ->
      List.map item_line items
      @ [ items_trailer ~count:(List.length items) ~timed_out ~partial ]
  | Lines payload ->
      Printf.sprintf "LINES %d" (List.length payload) :: payload
  | Epoch e -> [ Printf.sprintf "EPOCH %d" e ]

type trailer = { count : int; timed_out : bool; partial : bool }

let trailer_of_line line =
  match String.split_on_char ' ' line with
  | [ word; n ] -> (
      match (word, int_of_string_opt n) with
      | "DONE", Some count -> Some { count; timed_out = false; partial = false }
      | "TIMEOUT", Some count -> Some { count; timed_out = true; partial = false }
      | "PARTIAL", Some count -> Some { count; timed_out = false; partial = true }
      | _ -> None)
  | _ -> None

(* The generic response reader, parameterized over item delivery so the
   buffering and the streaming entry points share one parser. *)
let read_response_gen read_line ~on_item ~items_value =
  (* One line of pushback so the first ITEM/DONE line can be re-examined
     by the item-stream loop. *)
  let pending = ref None in
  let read_line () =
    match !pending with
    | Some l ->
        pending := None;
        Some l
    | None -> read_line ()
  in
  let rec items n =
    match read_line () with
    | None -> Error "connection closed mid-response"
    | Some line -> (
        match String.split_on_char ' ' line with
        | [ "ITEM"; node; dist; meta ] -> (
            match
              (int_of_string_opt node, int_of_string_opt dist, int_of_string_opt meta)
            with
            | Some node, Some dist, Some meta ->
                on_item { node; dist; meta };
                items (n + 1)
            | _ -> Error (Printf.sprintf "malformed ITEM line %S" line))
        | ("DONE" | "TIMEOUT" | "PARTIAL") :: _ -> (
            match trailer_of_line line with
            | Some t when t.count = n -> Ok (items_value t)
            | Some _ -> Error (Printf.sprintf "trailer count mismatch in %S" line)
            | None -> Error (Printf.sprintf "malformed trailer line %S" line))
        | _ -> Error (Printf.sprintf "unexpected line %S in item stream" line))
  in
  let rec raw_lines n acc =
    if n = 0 then Ok (Lines (List.rev acc))
    else
      match read_line () with
      | None -> Error "connection closed mid-payload"
      | Some line -> raw_lines (n - 1) (line :: acc)
  in
  match read_line () with
  | None -> Error "connection closed"
  | Some line -> (
      match String.split_on_char ' ' line with
      | [ "PONG" ] -> Ok Pong
      | [ "OK" ] -> Ok Ok_done
      | [ "BUSY" ] -> Ok Busy
      | "ERR" :: _ ->
          let msg =
            if String.length line > 4 then String.sub line 4 (String.length line - 4)
            else ""
          in
          Ok (Err msg)
      | [ "NODIST" ] -> Ok (Dist None)
      | [ "DIST"; d ] -> (
          match int_of_string_opt d with
          | Some d -> Ok (Dist (Some d))
          | None -> Error (Printf.sprintf "malformed DIST line %S" line))
      | [ "LINES"; n ] -> (
          match int_of_string_opt n with
          | Some n when n >= 0 -> raw_lines n []
          | _ -> Error (Printf.sprintf "malformed LINES header %S" line))
      | [ "EPOCH"; e ] -> (
          match int_of_string_opt e with
          | Some e -> Ok (Epoch e)
          | None -> Error (Printf.sprintf "malformed EPOCH line %S" line))
      | ("ITEM" | "DONE" | "TIMEOUT" | "PARTIAL") :: _ ->
          pending := Some line;
          items 0
      | _ -> Error (Printf.sprintf "unexpected response line %S" line))

let read_response read_line =
  let acc = ref [] in
  read_response_gen read_line
    ~on_item:(fun it -> acc := it :: !acc)
    ~items_value:(fun t ->
      Items { items = List.rev !acc; timed_out = t.timed_out; partial = t.partial })

let read_item_stream read_line ~on_item =
  read_response_gen read_line ~on_item
    ~items_value:(fun t ->
      Items { items = []; timed_out = t.timed_out; partial = t.partial })

(* Read the [n] SUB-tagged answers of a batch. Sub-responses arrive in
   completion order, not request order; each is delivered through
   [on_response] as soon as its trailer is read, so a transport failure
   mid-batch still leaves the caller with the answered prefix. *)
let read_batch_responses read_line ~n ~on_response =
  let seen = Array.make n false in
  let rec sub remaining =
    if remaining = 0 then Ok ()
    else
      match read_line () with
      | None -> Error "connection closed mid-batch"
      | Some line -> (
          match String.split_on_char ' ' line with
          | [ "SUB"; i ] -> (
              match int_of_string_opt i with
              | Some i when i >= 0 && i < n && not seen.(i) -> (
                  seen.(i) <- true;
                  match read_response read_line with
                  | Ok resp ->
                      on_response i resp;
                      sub (remaining - 1)
                  | Error _ as e -> e)
              | Some i when i >= 0 && i < n ->
                  Error (Printf.sprintf "duplicate batch index %d" i)
              | _ -> Error (Printf.sprintf "batch index out of range in %S" line))
          | _ -> Error (Printf.sprintf "expected SUB header, got %S" line))
  in
  sub n
