(** The line-oriented wire protocol of the FliX query service.

    Requests are single lines of space-separated tokens; [-] stands for
    an absent optional field. Responses are one or more lines:

    {v
    request                                          response
    -------------------------------------------------------------------
    PING                                             PONG
    SLEEP <ms>                                       OK | TIMEOUT 0
    DESCENDANTS <doc> <anchor|-> <tag|-> <k> [max]   ITEM*, DONE <n> | TIMEOUT <n>
    CONNECTED <a> <b> [max]                          DIST <d> | NODIST
    EVALUATE <start_tag> <target_tag> <k> [max]      ITEM*, DONE <n> | TIMEOUT <n>
    STATS                                            LINES <n> then n raw lines
    METRICS                                          LINES <n> then n raw lines
    (any, queue full)                                BUSY
    (malformed)                                      ERR <message>
    v}

    Each [ITEM <node> <dist> <meta>] line carries one {!Pee.item}; the
    [DONE]/[TIMEOUT] trailer carries the item count, [TIMEOUT] marking a
    partial result cut off by the request deadline. [SLEEP] is a
    diagnostic verb: it occupies a worker for the given number of
    milliseconds — tests use it to saturate the pool deterministically. *)

type request =
  | Ping
  | Stats
  | Metrics
  | Sleep of int  (** milliseconds *)
  | Descendants of {
      doc : string;
      anchor : string option;
      tag : string option;
      k : int;
      max_dist : int option;
    }
  | Connected of { a : int; b : int; max_dist : int option }
  | Evaluate of {
      start_tag : string;
      target_tag : string;
      k : int;
      max_dist : int option;
    }

type item = { node : int; dist : int; meta : int }

type response =
  | Pong
  | Ok_done                                        (** [SLEEP] completed *)
  | Busy                                           (** admission control *)
  | Err of string
  | Dist of int option
  | Items of { items : item list; timed_out : bool }
  | Lines of string list                           (** [STATS] / [METRICS] payload *)

val verb : request -> string
(** Lower-case verb name, the metrics label ("ping", "descendants", ...). *)

val pool_bound : request -> bool
(** Whether the request must go through the worker pool. [Ping] and
    [Metrics] are answered inline so the observability plane stays
    responsive on a saturated server. *)

val parse_request : string -> (request, string) result
(** Parse one request line. The error string is human-readable and is
    sent back verbatim as [ERR <message>]. *)

val request_line : request -> string
(** Render a request; [parse_request (request_line r) = Ok r]. *)

val response_lines : response -> string list
(** Render a response as wire lines, in order. *)

val read_response : (unit -> string option) -> (response, string) result
(** [read_response read_line] parses one full response by pulling lines
    from [read_line] ([None] = connection closed). *)
