(** The line-oriented wire protocol of the FliX query service.

    Requests are single lines of space-separated tokens; [-] stands for
    an absent optional field. Responses are one or more lines:

    {v
    request                                          response
    -------------------------------------------------------------------
    PING                                             PONG
    SLEEP <ms>                                       OK | TIMEOUT 0
    DESCENDANTS <doc> <anchor|-> <tag|-> <k> [max]   ITEM*, DONE <n> | TIMEOUT <n>
    NDESCENDANTS <node> <tag|-> <k> [max]            ITEM*, DONE <n> | TIMEOUT <n>
    ANCESTORS <node> <tag|-> <k> [max]               ITEM*, DONE <n> | TIMEOUT <n>
    CONNECTED <a> <b> [max]                          DIST <d> | NODIST
    EVALUATE <start_tag> <target_tag> <k> [max]      ITEM*, DONE <n> | TIMEOUT <n>
    RESOLVE <doc> <anchor|->                         ITEM <node> 0 0, DONE 1 | DONE 0
    STATS                                            LINES <n> then n raw lines
    METRICS                                          LINES <n> then n raw lines
    EPOCH                                            EPOCH <e>
    EVICT <doc> [<doc> ...]                          EPOCH <e> | ERR <message>
    RELOAD                                           EPOCH <e> | ERR <message>
    INGEST <n> then n document frames                EPOCH <e> | ERR <message>
    (any, queue full)                                BUSY
    (malformed)                                      ERR <message>
    v}

    Any request line may be prefixed with [DEADLINE <ms>] to override
    the server's default deadline for that request alone — the sharded
    coordinator uses it to propagate its remaining time budget to shard
    servers. Use {!parse_envelope} to observe the prefix;
    {!parse_request} accepts and discards it.

    Each [ITEM <node> <dist> <meta>] line carries one {!Pee.item}; the
    [DONE]/[TIMEOUT]/[PARTIAL] trailer carries the item count.
    [TIMEOUT] marks a result cut off by the request deadline; [PARTIAL]
    marks a complete-as-far-as-possible result degraded by a backend
    failure (a sharded deployment with a dead shard answers [PARTIAL]
    instead of failing the whole query). [SLEEP] is a diagnostic verb:
    it occupies a worker for the given number of milliseconds — tests
    use it to saturate the pool deterministically.

    [NDESCENDANTS] and [ANCESTORS] are node-addressed: they take a raw
    node id (like [CONNECTED]) instead of a [doc#anchor] name, which is
    how the coordinator chases cross-shard links without a catalog.
    [ANCESTORS] evaluates ancestors-{e or-self}: the start node itself
    is reported at distance 0 when it matches the tag filter, so
    "closest ancestor with tag [t]" includes the node being probed.
    [NDESCENDANTS] mirrors [DESCENDANTS] and excludes the start.

    {2 Batches}

    [BATCH <n>] (optionally prefixed [DEADLINE <ms> BATCH <n>]) opens a
    batch envelope: the next [n] lines are sub-requests, one per line,
    drawn from the probe verbs [CONNECTED], [NDESCENDANTS], [ANCESTORS],
    [RESOLVE] (and the diagnostic [SLEEP]) — see {!batch_allowed}. The
    server fans the sub-requests across its worker pool and answers with
    exactly [n] sub-responses, each introduced by a [SUB <i>] line
    carrying the 0-based index of the sub-request it answers, followed
    by that sub-request's ordinary response lines. Sub-responses arrive
    in {e completion} order, not request order. A malformed or
    disallowed sub-request line fails only its own slot ([SUB <i>] then
    [ERR ...]); the batch framing stays intact. The [DEADLINE] budget
    covers the whole batch: sub-requests still queued when it expires
    answer [TIMEOUT 0]. A queue-full server backpressures sub-request
    dispatch rather than rejecting any sub with [BUSY] — a batch may
    legitimately be larger than the server's work queue.

    {2 Administration}

    The admin verbs drive hot reload (see {!Fx_admin.Snapshot}). [EPOCH]
    reports the serving snapshot's epoch. [INGEST <n>] opens an ingest
    envelope: the next lines are [n] document frames, each a
    [DOC <name> <lines>] header followed by exactly [lines] raw XML
    lines; the server parses and indexes them off the request path and
    answers [EPOCH <e>] once the new snapshot is published (or a single
    [ERR] line after consuming the whole envelope — framing stays
    intact). [EVICT <doc>...] removes documents by name; [RELOAD]
    re-reads the deployment the server was started from. Every
    successful admin mutation answers the {e new} epoch. In-flight
    requests finish on the epoch they started on; no connection is
    dropped by a swap. *)

type request =
  | Ping
  | Stats
  | Metrics
  | Sleep of int  (** milliseconds *)
  | Descendants of {
      doc : string;
      anchor : string option;
      tag : string option;
      k : int;
      max_dist : int option;
    }
  | Node_descendants of { node : int; tag : string option; k : int; max_dist : int option }
  | Ancestors of { node : int; tag : string option; k : int; max_dist : int option }
  | Connected of { a : int; b : int; max_dist : int option }
  | Evaluate of {
      start_tag : string;
      target_tag : string;
      k : int;
      max_dist : int option;
    }
  | Resolve of { doc : string; anchor : string option }
  | Evict of string list  (** document names, non-empty *)
  | Reload
  | Epoch_query

type item = { node : int; dist : int; meta : int }

type response =
  | Pong
  | Ok_done                                        (** [SLEEP] completed *)
  | Busy                                           (** admission control *)
  | Err of string
  | Dist of int option
  | Items of { items : item list; timed_out : bool; partial : bool }
  | Lines of string list                           (** [STATS] / [METRICS] payload *)
  | Epoch of int                                   (** admin-plane answer *)

type envelope = { deadline_ms : int option; req : request }
(** A request with its optional per-request deadline override. *)

val verb : request -> string
(** Lower-case verb name, the metrics label ("ping", "descendants", ...).
    [Node_descendants] shares the "descendants" label — same query
    shape, different addressing. *)

val pool_bound : request -> bool
(** Whether the request must go through the worker pool. [Ping] and
    [Metrics] are answered inline so the observability plane stays
    responsive on a saturated server. *)

val batch_allowed : request -> bool
(** Whether the verb may appear as a [BATCH] sub-request. The batch
    plane exists for cheap point probes ([CONNECTED], [NDESCENDANTS],
    [ANCESTORS], [RESOLVE]); the heavyweight streaming verbs and the
    inline observability verbs are excluded. [SLEEP] is allowed as the
    diagnostic stand-in for a slow probe. *)

val streams_items : request -> bool
(** Whether the verb's response is an item stream whose [ITEM] lines
    the server flushes incrementally as they are produced. *)

val parse_request : string -> (request, string) result
(** Parse one request line; a [DEADLINE <ms>] prefix is accepted and
    discarded. The error string is human-readable and is sent back
    verbatim as [ERR <message>]. *)

val parse_envelope : string -> (envelope, string) result
(** Like {!parse_request}, but reports the [DEADLINE] prefix. *)

val request_line : request -> string
(** Render a request; [parse_request (request_line r) = Ok r]. *)

val envelope_line : ?deadline_ms:int -> request -> string
(** [request_line] with an optional [DEADLINE <ms>] prefix. *)

type framed =
  | Single of envelope
  | Batch of { deadline_ms : int option; n : int }
  | Ingest of { n : int }
(** A parsed request header line: a plain envelope, a [BATCH] header
    announcing [n] sub-request lines, or an [INGEST] header announcing
    [n] document frames. *)

val parse_framed : string -> (framed, string) result
(** Like {!parse_envelope}, but recognizes the [BATCH <n>] header
    (with or without a [DEADLINE <ms>] prefix; [n] must be positive)
    and the [INGEST <n>] header. *)

val batch_line : ?deadline_ms:int -> int -> string
(** The [BATCH <n>] header line, optionally deadline-prefixed. *)

val sub_line : int -> string
(** The [SUB <i>] line introducing sub-response [i]. *)

val ingest_line : int -> string
(** The [INGEST <n>] header line. *)

val doc_line : name:string -> n_lines:int -> string
(** The [DOC <name> <lines>] frame header of one ingested document. *)

val parse_doc_line : string -> (string * int, string) result
(** Parse a [DOC] frame header into [(name, n_lines)]. *)

val item_line : item -> string
(** One [ITEM <node> <dist> <meta>] wire line. *)

val items_trailer : count:int -> timed_out:bool -> partial:bool -> string
(** The stream trailer: [TIMEOUT n] when [timed_out], else [PARTIAL n]
    when [partial], else [DONE n]. *)

val response_lines : response -> string list
(** Render a response as wire lines, in order. *)

val read_response : (unit -> string option) -> (response, string) result
(** [read_response read_line] parses one full response by pulling lines
    from [read_line] ([None] = connection closed). *)

type trailer = { count : int; timed_out : bool; partial : bool }

val read_item_stream :
  (unit -> string option) ->
  on_item:(item -> unit) ->
  (response, string) result
(** Like {!read_response}, but delivers [ITEM] lines through [on_item]
    as they are read instead of accumulating them — the consuming side
    of the server's incremental flushing. The final [Items] response
    carries an empty list; its [timed_out]/[partial] flags and the
    verified trailer count reflect the full stream. Non-stream
    responses ([BUSY], [ERR], [DIST], ...) are returned unchanged. *)

val read_batch_responses :
  (unit -> string option) ->
  n:int ->
  on_response:(int -> response -> unit) ->
  (unit, string) result
(** [read_batch_responses read_line ~n ~on_response] reads the [n]
    [SUB]-tagged answers of a batch, delivering each through
    [on_response index response] as soon as its last line is read —
    sub-responses arrive in completion order, and a transport failure
    mid-batch still leaves the caller with every answer delivered so
    far. Rejects out-of-range and duplicate indexes. *)
