(** The line-oriented wire protocol of the FliX query service.

    Requests are single lines of space-separated tokens; [-] stands for
    an absent optional field. Responses are one or more lines:

    {v
    request                                          response
    -------------------------------------------------------------------
    PING                                             PONG
    SLEEP <ms>                                       OK | TIMEOUT 0
    DESCENDANTS <doc> <anchor|-> <tag|-> <k> [max]   ITEM*, DONE <n> | TIMEOUT <n>
    NDESCENDANTS <node> <tag|-> <k> [max]            ITEM*, DONE <n> | TIMEOUT <n>
    ANCESTORS <node> <tag|-> <k> [max]               ITEM*, DONE <n> | TIMEOUT <n>
    CONNECTED <a> <b> [max]                          DIST <d> | NODIST
    EVALUATE <start_tag> <target_tag> <k> [max]      ITEM*, DONE <n> | TIMEOUT <n>
    RESOLVE <doc> <anchor|->                         ITEM <node> 0 0, DONE 1 | DONE 0
    STATS                                            LINES <n> then n raw lines
    METRICS                                          LINES <n> then n raw lines
    (any, queue full)                                BUSY
    (malformed)                                      ERR <message>
    v}

    Any request line may be prefixed with [DEADLINE <ms>] to override
    the server's default deadline for that request alone — the sharded
    coordinator uses it to propagate its remaining time budget to shard
    servers. Use {!parse_envelope} to observe the prefix;
    {!parse_request} accepts and discards it.

    Each [ITEM <node> <dist> <meta>] line carries one {!Pee.item}; the
    [DONE]/[TIMEOUT]/[PARTIAL] trailer carries the item count.
    [TIMEOUT] marks a result cut off by the request deadline; [PARTIAL]
    marks a complete-as-far-as-possible result degraded by a backend
    failure (a sharded deployment with a dead shard answers [PARTIAL]
    instead of failing the whole query). [SLEEP] is a diagnostic verb:
    it occupies a worker for the given number of milliseconds — tests
    use it to saturate the pool deterministically.

    [NDESCENDANTS] and [ANCESTORS] are node-addressed: they take a raw
    node id (like [CONNECTED]) instead of a [doc#anchor] name, which is
    how the coordinator chases cross-shard links without a catalog.
    [ANCESTORS] evaluates ancestors-{e or-self}: the start node itself
    is reported at distance 0 when it matches the tag filter, so
    "closest ancestor with tag [t]" includes the node being probed.
    [NDESCENDANTS] mirrors [DESCENDANTS] and excludes the start. *)

type request =
  | Ping
  | Stats
  | Metrics
  | Sleep of int  (** milliseconds *)
  | Descendants of {
      doc : string;
      anchor : string option;
      tag : string option;
      k : int;
      max_dist : int option;
    }
  | Node_descendants of { node : int; tag : string option; k : int; max_dist : int option }
  | Ancestors of { node : int; tag : string option; k : int; max_dist : int option }
  | Connected of { a : int; b : int; max_dist : int option }
  | Evaluate of {
      start_tag : string;
      target_tag : string;
      k : int;
      max_dist : int option;
    }
  | Resolve of { doc : string; anchor : string option }

type item = { node : int; dist : int; meta : int }

type response =
  | Pong
  | Ok_done                                        (** [SLEEP] completed *)
  | Busy                                           (** admission control *)
  | Err of string
  | Dist of int option
  | Items of { items : item list; timed_out : bool; partial : bool }
  | Lines of string list                           (** [STATS] / [METRICS] payload *)

type envelope = { deadline_ms : int option; req : request }
(** A request with its optional per-request deadline override. *)

val verb : request -> string
(** Lower-case verb name, the metrics label ("ping", "descendants", ...).
    [Node_descendants] shares the "descendants" label — same query
    shape, different addressing. *)

val pool_bound : request -> bool
(** Whether the request must go through the worker pool. [Ping] and
    [Metrics] are answered inline so the observability plane stays
    responsive on a saturated server. *)

val streams_items : request -> bool
(** Whether the verb's response is an item stream whose [ITEM] lines
    the server flushes incrementally as they are produced. *)

val parse_request : string -> (request, string) result
(** Parse one request line; a [DEADLINE <ms>] prefix is accepted and
    discarded. The error string is human-readable and is sent back
    verbatim as [ERR <message>]. *)

val parse_envelope : string -> (envelope, string) result
(** Like {!parse_request}, but reports the [DEADLINE] prefix. *)

val request_line : request -> string
(** Render a request; [parse_request (request_line r) = Ok r]. *)

val envelope_line : ?deadline_ms:int -> request -> string
(** [request_line] with an optional [DEADLINE <ms>] prefix. *)

val item_line : item -> string
(** One [ITEM <node> <dist> <meta>] wire line. *)

val items_trailer : count:int -> timed_out:bool -> partial:bool -> string
(** The stream trailer: [TIMEOUT n] when [timed_out], else [PARTIAL n]
    when [partial], else [DONE n]. *)

val response_lines : response -> string list
(** Render a response as wire lines, in order. *)

val read_response : (unit -> string option) -> (response, string) result
(** [read_response read_line] parses one full response by pulling lines
    from [read_line] ([None] = connection closed). *)

type trailer = { count : int; timed_out : bool; partial : bool }

val read_item_stream :
  (unit -> string option) ->
  on_item:(item -> unit) ->
  (response, string) result
(** Like {!read_response}, but delivers [ITEM] lines through [on_item]
    as they are read instead of accumulating them — the consuming side
    of the server's incremental flushing. The final [Items] response
    carries an empty list; its [timed_out]/[partial] flags and the
    verified trailer count reflect the full stream. Non-stream
    responses ([BUSY], [ERR], [DIST], ...) are returned unchanged. *)
