type 'a t = {
  mutable items : 'a list;     (* reversed producer stack *)
  mutable out : 'a list;       (* consumer-ordered head *)
  mutable size : int;
  mutable closed : bool;
  capacity : int;
  lock : Mutex.t;
  nonempty : Condition.t;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Work_queue.create: capacity must be >= 1";
  {
    items = [];
    out = [];
    size = 0;
    closed = false;
    capacity;
    lock = Mutex.create ();
    nonempty = Condition.create ();
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let try_push t x =
  with_lock t (fun () ->
      if t.closed || t.size >= t.capacity then false
      else begin
        t.items <- x :: t.items;
        t.size <- t.size + 1;
        Condition.signal t.nonempty;
        true
      end)

let pop t =
  with_lock t (fun () ->
      let rec wait () =
        match t.out with
        | x :: rest ->
            t.out <- rest;
            t.size <- t.size - 1;
            Some x
        | [] ->
            if t.items <> [] then begin
              t.out <- List.rev t.items;
              t.items <- [];
              wait ()
            end
            else if t.closed then None
            else begin
              Condition.wait t.nonempty t.lock;
              wait ()
            end
      in
      wait ())

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let length t = with_lock t (fun () -> t.size)
let capacity t = t.capacity
