(** Server observability: lock-free counters and fixed-bucket latency
    histograms, rendered in Prometheus text exposition format.

    All mutation is [Atomic] so workers on different domains and the
    per-connection threads can record without coordination; [render]
    reads a consistent-enough snapshot (Prometheus scrapes tolerate
    per-series skew). *)

type t

val create : unit -> t

val verbs : string list
(** The known verb labels, in rendering order. Unknown verbs are folded
    into ["other"] rather than dropped. *)

val incr_requests : t -> verb:string -> unit
(** Count one received request ([flix_requests_total{verb=...}]). *)

val incr_rejected : t -> unit
(** Count one admission-control rejection ([flix_rejected_total]). *)

val incr_timeouts : t -> verb:string -> unit
(** Count one deadline expiry ([flix_timeouts_total{verb=...}]). *)

val incr_errors : t -> unit
(** Count one [ERR] response ([flix_errors_total]). *)

val observe_ms : t -> verb:string -> float -> unit
(** Record one request duration into the verb's histogram
    ([flix_request_duration_ms]). *)

val requests_total : t -> verb:string -> int
val rejected_total : t -> int
val timeouts_total : t -> verb:string -> int
val errors_total : t -> int
val observations : t -> verb:string -> int
(** Raw counter reads for tests and the bench harness. *)

val buckets_ms : float array
(** Histogram bucket upper bounds in milliseconds (exclusive of the
    implicit [+Inf] bucket). *)

val register_collector : t -> (unit -> string list) -> unit
(** Register an extra metrics source — e.g. the buffer-pool counters of
    a disk deployment — whose lines [render] appends after the built-in
    series, in registration order. The callback runs on whichever
    thread serves METRICS, so it must be thread-safe. *)

val render : t -> string list
(** Prometheus text format, one line per entry — [# HELP]/[# TYPE]
    comments, counters, cumulative histogram buckets, then the output
    of every registered collector. *)
