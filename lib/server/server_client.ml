type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

type 'a reply = Value of 'a | Busy | Server_error of string

let set_recv_timeout t seconds =
  let v = match seconds with None -> 0.0 | Some s -> Float.max s 0.000001 in
  try Unix.setsockopt_float t.fd Unix.SO_RCVTIMEO v
  with Unix.Unix_error _ | Invalid_argument _ ->
    (* Not supported on this platform: the client degrades to blocking
       reads, exactly the pre-timeout behaviour. *)
    ()

let connect ?(host = "127.0.0.1") ?recv_timeout ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     Unix.setsockopt fd Unix.TCP_NODELAY true
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let t = { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd } in
  (match recv_timeout with None -> () | Some s -> set_recv_timeout t (Some s));
  t

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* A tripped SO_RCVTIMEO surfaces from the buffered channel as
   Sys_error/Unix_error (EAGAIN), which [read_line] folds into [None] —
   so a hung server yields a clean "connection closed mid-response"
   error instead of wedging the caller. The connection is unusable
   afterwards (the response may still arrive later and desynchronize
   the framing); callers must [close] and reconnect. *)
let read_line_of t () =
  match input_line t.ic with
  | line -> Some line
  | exception (End_of_file | Sys_error _ | Sys_blocked_io | Unix.Unix_error _) -> None

let send t ?deadline_ms req =
  match
    output_string t.oc (Protocol.envelope_line ?deadline_ms req);
    output_char t.oc '\n';
    flush t.oc
  with
  | exception (Sys_error _ | Unix.Unix_error _) -> Error "connection lost on send"
  | () -> Ok ()

let request ?deadline_ms t req =
  match send t ?deadline_ms req with
  | Error _ as e -> e
  | Ok () -> Protocol.read_response (read_line_of t)

let request_stream ?deadline_ms t req ~on_item =
  match send t ?deadline_ms req with
  | Error _ as e -> e
  | Ok () -> Protocol.read_item_stream (read_line_of t) ~on_item

(* Pipelined batch: one BATCH header plus every sub-request line goes
   out in a single buffered write + flush, then the SUB-tagged answers
   are read back in completion order. [on_response] sees each answer as
   soon as it is parsed, so a transport failure mid-batch still leaves
   the caller with the answered prefix. *)
let request_batch ?deadline_ms t reqs ~on_response =
  let n = Array.length reqs in
  if n = 0 then Ok ()
  else
    match
      output_string t.oc (Protocol.batch_line ?deadline_ms n);
      output_char t.oc '\n';
      Array.iter
        (fun req ->
          output_string t.oc (Protocol.request_line req);
          output_char t.oc '\n')
        reqs;
      flush t.oc
    with
    | exception (Sys_error _ | Unix.Unix_error _) -> Error "connection lost on send"
    | () -> Protocol.read_batch_responses (read_line_of t) ~n ~on_response

let request_many ?deadline_ms t reqs =
  let out = Array.make (Array.length reqs) (Protocol.Err "missing batch answer") in
  match request_batch ?deadline_ms t reqs ~on_response:(fun i resp -> out.(i) <- resp) with
  | Ok () -> Ok out
  | Error _ as e -> e

(* Collapse the transport/protocol/server error planes into the [reply]
   shape each typed accessor wants. *)
let typed t req extract =
  match request t req with
  | Error e -> Error e
  | Ok Protocol.Busy -> Ok Busy
  | Ok (Protocol.Err msg) -> Ok (Server_error msg)
  | Ok resp -> (
      match extract resp with
      | Some v -> Ok (Value v)
      | None -> Error "unexpected response type")

let ping t =
  match request t Protocol.Ping with Ok Protocol.Pong -> true | _ -> false

let sleep t ms =
  typed t (Protocol.Sleep ms) (function
    | Protocol.Ok_done -> Some true
    | Protocol.Items { items = []; timed_out = true; partial = _ } -> Some false
    | _ -> None)

let items_reply = function
  | Protocol.Items { items; timed_out; partial = _ } -> Some (items, timed_out)
  | _ -> None

let descendants t ~doc ?anchor ?tag ?max_dist ~k () =
  typed t (Protocol.Descendants { doc; anchor; tag; k; max_dist }) items_reply

let evaluate t ~start_tag ~target_tag ?max_dist ~k () =
  typed t (Protocol.Evaluate { start_tag; target_tag; k; max_dist }) items_reply

let connected t ?max_dist a b =
  typed t (Protocol.Connected { a; b; max_dist }) (function
    | Protocol.Dist d -> Some d
    | _ -> None)

let lines_reply = function Protocol.Lines l -> Some l | _ -> None
let stats t = typed t Protocol.Stats lines_reply
let metrics t = typed t Protocol.Metrics lines_reply

(* --- admin plane --------------------------------------------------- *)

let epoch_reply = function Protocol.Epoch e -> Some e | _ -> None
let epoch t = typed t Protocol.Epoch_query epoch_reply
let evict t names = typed t (Protocol.Evict names) epoch_reply
let reload t = typed t Protocol.Reload epoch_reply

(* The INGEST envelope is the one client-side frame the [request] escape
   hatch cannot express: header, then one DOC frame per document with
   its body split into lines, all in a single buffered write. *)
let ingest t docs =
  match docs with
  | [] -> Error "empty ingest"
  | docs -> (
      match
        output_string t.oc (Protocol.ingest_line (List.length docs));
        output_char t.oc '\n';
        List.iter
          (fun (name, body) ->
            let lines = String.split_on_char '\n' body in
            output_string t.oc (Protocol.doc_line ~name ~n_lines:(List.length lines));
            output_char t.oc '\n';
            List.iter
              (fun l ->
                output_string t.oc l;
                output_char t.oc '\n')
              lines)
          docs;
        flush t.oc
      with
      | exception (Sys_error _ | Unix.Unix_error _) -> Error "connection lost on send"
      | () -> (
          match Protocol.read_response (read_line_of t) with
          | Error _ as e -> e
          | Ok Protocol.Busy -> Ok Busy
          | Ok (Protocol.Err msg) -> Ok (Server_error msg)
          | Ok (Protocol.Epoch e) -> Ok (Value e)
          | Ok _ -> Error "unexpected response type"))
