type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

type 'a reply = Value of 'a | Busy | Server_error of string

let connect ?(host = "127.0.0.1") ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     Unix.setsockopt fd Unix.TCP_NODELAY true
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let request t req =
  match
    output_string t.oc (Protocol.request_line req);
    output_char t.oc '\n';
    flush t.oc
  with
  | exception (Sys_error _ | Unix.Unix_error _) -> Error "connection lost on send"
  | () ->
      let read_line () =
        match input_line t.ic with
        | line -> Some line
        | exception (End_of_file | Sys_error _ | Unix.Unix_error _) -> None
      in
      Protocol.read_response read_line

(* Collapse the transport/protocol/server error planes into the [reply]
   shape each typed accessor wants. *)
let typed t req extract =
  match request t req with
  | Error e -> Error e
  | Ok Protocol.Busy -> Ok Busy
  | Ok (Protocol.Err msg) -> Ok (Server_error msg)
  | Ok resp -> (
      match extract resp with
      | Some v -> Ok (Value v)
      | None -> Error "unexpected response type")

let ping t =
  match request t Protocol.Ping with Ok Protocol.Pong -> true | _ -> false

let sleep t ms =
  typed t (Protocol.Sleep ms) (function
    | Protocol.Ok_done -> Some true
    | Protocol.Items { items = []; timed_out = true } -> Some false
    | _ -> None)

let items_reply = function
  | Protocol.Items { items; timed_out } -> Some (items, timed_out)
  | _ -> None

let descendants t ~doc ?anchor ?tag ?max_dist ~k () =
  typed t (Protocol.Descendants { doc; anchor; tag; k; max_dist }) items_reply

let evaluate t ~start_tag ~target_tag ?max_dist ~k () =
  typed t (Protocol.Evaluate { start_tag; target_tag; k; max_dist }) items_reply

let connected t ?max_dist a b =
  typed t (Protocol.Connected { a; b; max_dist }) (function
    | Protocol.Dist d -> Some d
    | _ -> None)

let lines_reply = function Protocol.Lines l -> Some l | _ -> None
let stats t = typed t Protocol.Stats lines_reply
let metrics t = typed t Protocol.Metrics lines_reply
