module Flix = Fx_flix.Flix
module Pee = Fx_flix.Pee
module RS = Fx_flix.Result_stream
module Collection = Fx_xml.Collection
module Xml_parser = Fx_xml.Xml_parser
module Stopwatch = Fx_util.Stopwatch
module Disk_hopi = Fx_index.Disk_hopi
module Catalog = Fx_index.Catalog
module Snapshot = Fx_admin.Snapshot
module Eval_cache = Fx_admin.Eval_cache
module Delta = Fx_admin.Delta

type config = {
  host : string;
  port : int;
  workers : int;
  queue_capacity : int;
  deadline_ms : float;
  max_results : int;
  max_line_bytes : int;
  max_connections : int;
  max_batch : int;
  max_ingest_lines : int;
  eval_cache_capacity : int;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    workers = 4;
    queue_capacity = 64;
    deadline_ms = 2000.0;
    max_results = 10_000;
    max_line_bytes = 8192;
    max_connections = 1024;
    max_batch = 1024;
    max_ingest_lines = 65_536;
    eval_cache_capacity = 256;
  }

(* Every lock in this module is taken through this wrapper: the critical
   sections are tiny, but several of them run Hashtbl operations or
   Condition waits that can raise, and an unlocked-on-raise mutex would
   wedge the acceptor or a worker forever (FL001). *)
let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* A job travels from the connection thread to a worker domain; items
   and the terminal response travel back through the mailbox. The worker
   pushes ITEM payloads as it produces them and the connection thread
   drains and flushes them immediately, so a slow stream reaches the
   client (and a merging coordinator) incrementally instead of as one
   buffered block. The terminal response is set last, under the same
   mutex, so a drained-empty mailbox with [resp = Some _] is complete. *)
type mailbox = {
  m : Mutex.t;
  c : Condition.t;
  mutable items : Protocol.item list; (* newest first *)
  mutable resp : Protocol.response option;
}

type job = { req : Protocol.request; deadline_ns : int64; reply : mailbox }

type custom = {
  custom_eval :
    emit:(Protocol.item -> unit) ->
    deadline_ns:int64 ->
    Protocol.request ->
    Protocol.response;
  custom_stats : unit -> string list;
}

(* What the worker pool evaluates against. [In_memory] is the original
   regime: shared immutable indexes, a private PEE per domain.
   [On_disk] serves straight from a persistent {!Disk_hopi} deployment —
   the thread-safe pager lets every domain share one handle, and the
   catalog resolves document/anchor/tag names without the collection.
   [Custom] delegates to an external evaluator — the scatter-gather
   coordinator of a sharded deployment plugs in here. *)
type backend =
  | In_memory of Flix.t
  | On_disk of { hopi : Disk_hopi.t; catalog : Catalog.t }
  | Custom of custom

type admin = {
  admin_reload : unit -> (backend, string) result;
  admin_retire : backend -> unit;
}

(* An EVALUATE answer cached with the epoch it was computed on: a hit
   replays only when the entry's epoch matches the requester's pinned
   epoch, so an in-flight store racing a snapshot swap can never leak a
   stale answer — the swap retags surviving entries to the new epoch
   (under the admin lock) and anything stored late simply misses. *)
type cached = { centry_epoch : int; citems : Protocol.item list }

(* flix_reload_duration_seconds: swap latencies are seconds-scale and
   rare, so a small mutex-guarded histogram (observed only by the
   admin-serialized swap path) is enough. *)
let reload_buckets_s = [| 0.001; 0.005; 0.025; 0.1; 0.5; 2.0; 10.0 |]

type reload_hist = {
  rh_m : Mutex.t;
  rh_counts : int array; (* per bucket, non-cumulative; last slot = +Inf *)
  mutable rh_sum : float;
  mutable rh_count : int;
}

type t = {
  cfg : config;
  snapshot : backend Snapshot.t;
  admin : admin option;
  admin_m : Mutex.t; (* serializes INGEST/EVICT/RELOAD *)
  eval_cache : cached Eval_cache.t;
  reload_hist : reload_hist;
  listen_fd : Unix.file_descr;
  bound_port : int;
  metrics : Metrics.t;
  queue : job Work_queue.t;
  mutable workers : unit Domain.t list;
  mutable acceptor : Thread.t option;
  running : bool Atomic.t;
  conns : (Unix.file_descr, unit) Hashtbl.t;
  conns_lock : Mutex.t;
}

(* --- evaluation (worker side) --------------------------------------- *)

let expired deadline_ns = Stopwatch.now_ns () > deadline_ns

let no_items ?(timed_out = false) ?(partial = false) () =
  Protocol.Items { items = []; timed_out; partial }

(* Tag names resolve like Flix.tag_arg: unknown tag -> the PEE's
   "match nothing" sentinel, not an error — heterogeneous collections
   routinely lack a tag. *)
let tag_arg coll = function
  | None -> None
  | Some name -> Some (Option.value ~default:(-1) (Collection.tag_id coll name))

(* Sleep in short slices so the deadline can cut it off — the
   diagnostic stand-in for a long-running query. *)
let nap ~deadline_ns ms =
  let rec go remaining =
    if expired deadline_ns then no_items ~timed_out:true ()
    else if remaining <= 0 then Protocol.Ok_done
    else begin
      let slice = min remaining 5 in
      Thread.delay (float_of_int slice /. 1000.0);
      go (remaining - slice)
    end
  in
  go ms

let node_range_err n = Protocol.Err (Printf.sprintf "node id out of range [0, %d)" n)

let resolved_node = function
  | None -> no_items ()
  | Some node ->
      Protocol.Items
        { items = [ { Protocol.node; dist = 0; meta = 0 } ]; timed_out = false; partial = false }

let evaluate_memory t ~epoch flix pee ~emit (job : job) : Protocol.response =
  let coll = Flix.collection flix in
  let n_nodes = Collection.n_nodes coll in
  let k_cap k = min k t.cfg.max_results in
  (* Emit up to [k] items, checking the deadline after each one: a query
     that finds anything always returns at least its first item, and a
     zero deadline still times out deterministically. *)
  let stream_out ~k stream =
    let rec go n =
      if n >= k then false
      else
        match RS.next stream with
        | None -> false
        | Some (it : Pee.item) ->
            emit { Protocol.node = it.node; dist = it.dist; meta = it.meta };
            if expired job.deadline_ns then true else go (n + 1)
    in
    no_items ~timed_out:(go 0) ()
  in
  match job.req with
  | (Protocol.Stats | Protocol.Connected _ | Protocol.Resolve _)
    when expired job.deadline_ns ->
      (* Expired while queued: answer TIMEOUT up front rather than burn
         worker time on a full answer the deadline policy has already
         cut — under overload that work only amplifies the backlog. The
         streaming verbs (and SLEEP) below check per item and keep their
         at-least-one-item guarantee. *)
      no_items ~timed_out:true ()
  | Protocol.Ping -> Protocol.Pong
  | Protocol.Metrics -> Protocol.Lines (Metrics.render t.metrics)
  | Protocol.Stats ->
      Protocol.Lines (String.split_on_char '\n' (Flix.report flix))
  | Protocol.Sleep ms -> nap ~deadline_ns:job.deadline_ns ms
  | Protocol.Connected { a; b; max_dist } ->
      if a < 0 || a >= n_nodes || b < 0 || b >= n_nodes then node_range_err n_nodes
      else Protocol.Dist (Pee.connected ?max_dist pee a b)
  | Protocol.Descendants { doc; anchor; tag; k; max_dist } -> (
      match Flix.node_of flix ~doc ~anchor with
      | None ->
          Protocol.Err
            (Printf.sprintf "unknown document or anchor %s%s" doc
               (match anchor with None -> "" | Some a -> "#" ^ a))
      | Some start ->
          stream_out ~k:(k_cap k)
            (Pee.descendants ?tag:(tag_arg coll tag) ?max_dist pee ~start))
  | Protocol.Node_descendants { node; tag; k; max_dist } ->
      if node < 0 || node >= n_nodes then node_range_err n_nodes
      else
        stream_out ~k:(k_cap k)
          (Pee.descendants ?tag:(tag_arg coll tag) ?max_dist pee ~start:node)
  | Protocol.Ancestors { node; tag; k; max_dist } ->
      if node < 0 || node >= n_nodes then node_range_err n_nodes
      else
        (* ancestors-or-self: the probed node itself counts at distance
           0 when it matches — see the protocol contract. *)
        stream_out ~k:(k_cap k)
          (Pee.ancestors ?tag:(tag_arg coll tag) ?max_dist ~include_self:true pee
             ~start:node)
  | Protocol.Evaluate { start_tag; target_tag; k; max_dist } -> (
      let key =
        {
          Eval_cache.start_tag;
          target_tag = Some target_tag;
          k = k_cap k;
          max_dist = Option.value max_dist ~default:(-1);
        }
      in
      match Eval_cache.find t.eval_cache key with
      | Some { centry_epoch; citems } when centry_epoch = epoch ->
          List.iter emit citems;
          no_items ()
      | _ ->
          (* Buffer what goes out so a clean (complete, in-deadline)
             answer can be replayed; the per-item [emit] still streams
             incrementally. *)
          let buf = ref [] in
          let emit_buffered it =
            buf := it :: !buf;
            emit it
          in
          let starts = Collection.find_by_tag coll start_tag in
          let resp =
            let rec go n stream =
              if n >= k_cap k then false
              else
                match RS.next stream with
                | None -> false
                | Some (it : Pee.item) ->
                    emit_buffered
                      { Protocol.node = it.node; dist = it.dist; meta = it.meta };
                    if expired job.deadline_ns then true else go (n + 1) stream
            in
            let timed_out =
              go 0
                (Pee.descendants_multi
                   ?tag:(tag_arg coll (Some target_tag))
                   ?max_dist pee ~starts)
            in
            no_items ~timed_out ()
          in
          (match resp with
          | Protocol.Items { timed_out = false; partial = false; _ } ->
              Eval_cache.store t.eval_cache key
                { centry_epoch = epoch; citems = List.rev !buf }
          | _ -> ());
          resp)
  | Protocol.Resolve { doc; anchor } -> resolved_node (Flix.node_of flix ~doc ~anchor)
  | Protocol.Evict _ | Protocol.Reload | Protocol.Epoch_query ->
      (* Admin verbs are answered inline on the connection thread; they
         are never pool-bound (see Protocol.pool_bound). *)
      Protocol.Err "admin verb on the worker path"

(* --- disk-backed evaluation ----------------------------------------- *)

let unknown_doc_err doc anchor =
  Protocol.Err
    (Printf.sprintf "unknown document or anchor %s%s" doc
       (match anchor with None -> "" | Some a -> "#" ^ a))

let within_dist max_dist d =
  match max_dist with None -> true | Some m -> d <= m

let take k l = List.filteri (fun i _ -> i < k) l

let disk_report hopi catalog =
  let module P = Fx_store.Pager in
  let pager name (s : P.stats) =
    Printf.sprintf "%s pager: %d logical reads, %d physical reads, %d physical writes"
      name s.P.logical_reads s.P.physical_reads s.P.physical_writes
  in
  let labels, tags = Disk_hopi.stats hopi in
  [
    "backend: disk (persistent HOPI deployment)";
    Printf.sprintf "%d nodes, %d documents, %d tag names" (Catalog.n_nodes catalog)
      (Catalog.n_docs catalog) (Catalog.n_tags catalog);
    pager "labels" labels;
    pager "tags" tags;
  ]

(* The buffer-pool counters of the shared deployment, as extra
   Prometheus series on the METRICS endpoint. *)
let pool_metric_lines hopi () =
  let module P = Fx_store.Pager in
  let labels, tags = Disk_hopi.stats hopi in
  let series name help l g =
    [
      Printf.sprintf "# HELP %s %s" name help;
      Printf.sprintf "# TYPE %s counter" name;
      Printf.sprintf "%s{file=\"labels\"} %d" name l;
      Printf.sprintf "%s{file=\"tags\"} %d" name g;
    ]
  in
  let lstripes, tstripes = Disk_hopi.stripe_stats hopi in
  let stripe_series name help kind proj =
    let fmt file ss =
      List.map
        (fun (s : P.stripe_stats) ->
          Printf.sprintf "%s{file=%S,stripe=\"%d\"} %d" name file s.P.stripe_index (proj s))
        ss
    in
    [ Printf.sprintf "# HELP %s %s" name help; Printf.sprintf "# TYPE %s %s" name kind ]
    @ fmt "labels" lstripes @ fmt "tags" tstripes
  in
  series "flix_pager_pool_hits_total"
    "Page reads served from the buffer pool, by index file."
    (labels.P.logical_reads - labels.P.demand_misses)
    (tags.P.logical_reads - tags.P.demand_misses)
  @ series "flix_pager_pool_misses_total"
      "Page reads that had to fetch from disk (prefetch fills excluded), by index file."
      labels.P.demand_misses tags.P.demand_misses
  @ series "flix_pager_physical_writes_total"
      "Physical page writes (write-backs, extensions, header), by index file."
      labels.P.physical_writes tags.P.physical_writes
  @ stripe_series "flix_pager_stripe_lock_acquisitions_total"
      "Stripe mutex and I/O-turn acquisitions, by index file and pool stripe." "counter"
      (fun s -> s.P.lock_acquisitions)
  @ stripe_series "flix_pager_stripe_lock_contended_total"
      "Stripe lock acquisitions that had to block on another domain." "counter"
      (fun s -> s.P.lock_contended)
  @ stripe_series "flix_pager_stripe_resident_pages"
      "Pages currently held by each pool stripe." "gauge"
      (fun s -> s.P.resident_pages)
  @ stripe_series "flix_pager_stripe_capacity_pages"
      "Pool segment bound of each stripe." "gauge"
      (fun s -> s.P.capacity_pages)

(* Unlike the PEE stream, a disk probe computes whole result blocks —
   there is no per-item deadline cut — so every pool verb answers the
   queued-expiry TIMEOUT up front, and EVALUATE re-checks the deadline
   between start nodes. Result blocks are still emitted item by item so
   the wire sees an incremental stream. *)
let evaluate_disk t hopi catalog ~emit (job : job) : Protocol.response =
  let k_cap k = min k t.cfg.max_results in
  let emit_pairs ?timed_out ?partial pairs =
    List.iter (fun (node, dist) -> emit { Protocol.node; dist; meta = 0 }) pairs;
    no_items ?timed_out ?partial ()
  in
  (* Unknown tag names match nothing, like the in-memory path's
     sentinel — and never reach the tag B-tree with a bogus id. *)
  let resolve_tag tag = Option.map (Catalog.tag_id catalog) tag in
  let node_stream ~probe ~drop_self node tag k max_dist =
    if node < 0 || node >= Catalog.n_nodes catalog then
      node_range_err (Catalog.n_nodes catalog)
    else
      match resolve_tag tag with
      | Some None -> no_items ()
      | (None | Some (Some _)) as resolved ->
          let want = Option.join resolved in
          probe node want
          |> List.filter (fun (v, d) ->
                 ((not drop_self) || not (v = node && d = 0)) && within_dist max_dist d)
          |> take (k_cap k)
          |> emit_pairs
  in
  match job.req with
  | Protocol.Ping -> Protocol.Pong
  | Protocol.Metrics -> Protocol.Lines (Metrics.render t.metrics)
  | _ when expired job.deadline_ns -> no_items ~timed_out:true ()
  | Protocol.Stats -> Protocol.Lines (disk_report hopi catalog)
  | Protocol.Sleep ms -> nap ~deadline_ns:job.deadline_ns ms
  | Protocol.Connected { a; b; max_dist } ->
      let n = Catalog.n_nodes catalog in
      if a < 0 || a >= n || b < 0 || b >= n then node_range_err n
      else
        Protocol.Dist
          (match Disk_hopi.distance hopi a b with
          | Some d when not (within_dist max_dist d) -> None
          | d -> d)
  | Protocol.Descendants { doc; anchor; tag; k; max_dist } -> (
      match Catalog.node_of catalog ~doc ~anchor with
      | None -> unknown_doc_err doc anchor
      | Some start ->
          node_stream ~probe:(Disk_hopi.descendants_by_tag hopi) ~drop_self:true start
            tag k max_dist)
  | Protocol.Node_descendants { node; tag; k; max_dist } ->
      node_stream ~probe:(Disk_hopi.descendants_by_tag hopi) ~drop_self:true node tag k
        max_dist
  | Protocol.Ancestors { node; tag; k; max_dist } ->
      (* ancestors-or-self, so keep the node itself at distance 0. *)
      node_stream ~probe:(Disk_hopi.ancestors_by_tag hopi) ~drop_self:false node tag k
        max_dist
  | Protocol.Evaluate { start_tag; target_tag; k; max_dist } -> (
      match Catalog.tag_id catalog target_tag with
      | None -> no_items ()
      | Some target ->
          let starts =
            match Catalog.tag_id catalog start_tag with
            | None -> []
            | Some id -> Disk_hopi.nodes_by_tag hopi id
          in
          let rec sweep acc timed = function
            | [] -> (acc, timed)
            | _ :: _ when expired job.deadline_ns -> (acc, true)
            | s :: rest ->
                let rs =
                  List.filter
                    (fun (_, d) -> d > 0 && within_dist max_dist d)
                    (Disk_hopi.descendants_by_tag hopi s (Some target))
                in
                sweep (List.rev_append rs acc) timed rest
          in
          let all, timed_out = sweep [] false starts in
          (* Several starts can reach one node; keep its best distance,
             like the engine's duplicate elimination. *)
          let best = Hashtbl.create 64 in
          List.iter
            (fun (v, d) ->
              match Hashtbl.find_opt best v with
              | Some d' when d' <= d -> ()
              | _ -> Hashtbl.replace best v d)
            all;
          Hashtbl.fold (fun v d acc -> (v, d) :: acc) best []
          |> List.sort (fun (v1, d1) (v2, d2) ->
                 match Int.compare d1 d2 with 0 -> Int.compare v1 v2 | c -> c)
          |> take (k_cap k)
          |> emit_pairs ~timed_out)
  | Protocol.Resolve { doc; anchor } -> resolved_node (Catalog.node_of catalog ~doc ~anchor)
  | Protocol.Evict _ | Protocol.Reload | Protocol.Epoch_query ->
      Protocol.Err "admin verb on the worker path"

let worker_loop t () =
  (* Every job pins the snapshot for its whole evaluation: a swap
     published mid-request retires the old state only after this pin
     (and every other) drains, so the request finishes on the epoch it
     started on. The in-memory evaluator still gets a private PEE per
     domain — cached per epoch, rebuilt (cheaply) when a swap lands. *)
  let pees : (int, Pee.t) Hashtbl.t = Hashtbl.create 8 in
  let pee_for epoch flix =
    match Hashtbl.find_opt pees epoch with
    | Some pee -> pee
    | None ->
        (* A domain only ever serves the current epoch plus briefly the
           one being retired; drop stale evaluators wholesale. *)
        if Hashtbl.length pees >= 8 then Hashtbl.reset pees;
        let pee = Pee.create (Flix.built flix) in
        Hashtbl.add pees epoch pee;
        pee
  in
  let eval ~epoch ~backend ~emit job =
    match backend with
    | In_memory flix -> evaluate_memory t ~epoch flix (pee_for epoch flix) ~emit job
    | On_disk { hopi; catalog } ->
        (* The pager under [hopi] is domain-safe, so every worker shares
           the one deployment handle — and its buffer pool. *)
        evaluate_disk t hopi catalog ~emit job
    | Custom c -> (
        match job.req with
        | Protocol.Ping -> Protocol.Pong
        | Protocol.Metrics -> Protocol.Lines (Metrics.render t.metrics)
        | Protocol.Stats -> Protocol.Lines (c.custom_stats ())
        | Protocol.Sleep ms -> nap ~deadline_ns:job.deadline_ns ms
        | Protocol.Evict _ | Protocol.Reload | Protocol.Epoch_query ->
            Protocol.Err "admin verb on the worker path"
        | req -> c.custom_eval ~emit ~deadline_ns:job.deadline_ns req)
  in
  let rec loop () =
    match Work_queue.pop t.queue with
    | None -> ()
    | Some job ->
        let emit it =
          with_lock job.reply.m (fun () ->
              job.reply.items <- it :: job.reply.items;
              Condition.signal job.reply.c)
        in
        let resp =
          let epoch, backend = Snapshot.pin t.snapshot in
          Fun.protect
            ~finally:(fun () -> Snapshot.unpin t.snapshot epoch)
            (fun () ->
              try eval ~epoch ~backend ~emit job with
              | (Out_of_memory | Stack_overflow) as fatal ->
                  (* Fatal resource exhaustion must not be flattened into
                     an ERR line (FL004); let it take the domain down so
                     stop/join surfaces it. *)
                  raise fatal
              | exn -> Protocol.Err ("internal: " ^ Printexc.to_string exn))
        in
        with_lock job.reply.m (fun () ->
            job.reply.resp <- Some resp;
            Condition.signal job.reply.c);
        loop ()
  in
  loop ()

(* --- admin plane (connection-thread side) --------------------------- *)

let observe_reload t seconds =
  with_lock t.reload_hist.rh_m (fun () ->
      let h = t.reload_hist in
      let rec bucket i =
        if i >= Array.length reload_buckets_s then i
        else if seconds <= reload_buckets_s.(i) then i
        else bucket (i + 1)
      in
      h.rh_counts.(bucket 0) <- h.rh_counts.(bucket 0) + 1;
      h.rh_sum <- h.rh_sum +. seconds;
      h.rh_count <- h.rh_count + 1)

(* The hot-reload plane as Prometheus series: serving epoch, per-epoch
   pin counts (draining epochs stay visible until their pins hit zero),
   swap duration histogram, and the EVALUATE cache counters that witness
   scoped invalidation keeping entries warm across swaps. *)
let snapshot_metric_lines t () =
  let gauge name help rows =
    Printf.sprintf "# HELP %s %s" name help
    :: Printf.sprintf "# TYPE %s gauge" name
    :: rows
  in
  let counter name help v =
    [
      Printf.sprintf "# HELP %s %s" name help;
      Printf.sprintf "# TYPE %s counter" name;
      Printf.sprintf "%s %d" name v;
    ]
  in
  let pinned_rows =
    List.map
      (fun (epoch, pins) ->
        Printf.sprintf "flix_snapshot_pinned{epoch=\"%d\"} %d" epoch pins)
      (Snapshot.pinned t.snapshot)
  in
  let h = t.reload_hist in
  let counts, sum, count =
    with_lock h.rh_m (fun () -> (Array.copy h.rh_counts, h.rh_sum, h.rh_count))
  in
  let hist =
    let acc = ref 0 in
    let rows =
      Array.to_list
        (Array.mapi
           (fun i c ->
             acc := !acc + c;
             let le =
               if i < Array.length reload_buckets_s then
                 Printf.sprintf "%g" reload_buckets_s.(i)
               else "+Inf"
             in
             Printf.sprintf "flix_reload_duration_seconds_bucket{le=\"%s\"} %d" le
               !acc)
           counts)
    in
    [
      "# HELP flix_reload_duration_seconds Wall time of successful snapshot swaps \
       (INGEST, EVICT, RELOAD).";
      "# TYPE flix_reload_duration_seconds histogram";
    ]
    @ rows
    @ [
        Printf.sprintf "flix_reload_duration_seconds_sum %.6f" sum;
        Printf.sprintf "flix_reload_duration_seconds_count %d" count;
      ]
  in
  gauge "flix_snapshot_epoch" "Epoch of the serving snapshot."
    [ Printf.sprintf "flix_snapshot_epoch %d" (Snapshot.epoch t.snapshot) ]
  @ gauge "flix_snapshot_pinned"
      "In-flight requests pinned to each live snapshot epoch." pinned_rows
  @ hist
  @ counter "flix_eval_cache_hits_total" "EVALUATE cache hits."
      (Eval_cache.hits t.eval_cache)
  @ counter "flix_eval_cache_misses_total" "EVALUATE cache misses."
      (Eval_cache.misses t.eval_cache)
  @ counter "flix_eval_cache_invalidated_total"
      "EVALUATE cache entries dropped by swap invalidation."
      (Eval_cache.invalidated t.eval_cache)
  @ gauge "flix_eval_cache_entries" "Resident EVALUATE cache entries."
      [ Printf.sprintf "flix_eval_cache_entries %d" (Eval_cache.length t.eval_cache) ]

(* Publish [next] as the serving snapshot, applying the delta's cache
   scope first: entries the delta cannot affect are retagged to the new
   epoch and stay warm; everything else is dropped. Runs under the admin
   lock, so the epoch arithmetic cannot race another swap — and a worker
   storing a result concurrently stores it under its own (old) pinned
   epoch, which the epoch check on the read side rejects. *)
let publish_swap t ~scope next =
  let next_epoch = Snapshot.epoch t.snapshot + 1 in
  (match (scope : Delta.scope) with
  | Delta.All -> Eval_cache.clear t.eval_cache
  | Delta.Tags tags -> Eval_cache.invalidate_tags t.eval_cache tags);
  Eval_cache.map_values t.eval_cache (fun c -> { c with centry_epoch = next_epoch });
  Snapshot.publish t.snapshot next

(* Run one admin mutation under the admin lock, timing successful swaps
   into the reload histogram. *)
let admin_op t f =
  with_lock t.admin_m (fun () ->
      let sw = Stopwatch.start () in
      let resp =
        try f () with
        | (Out_of_memory | Stack_overflow) as fatal -> raise fatal
        | exn -> Protocol.Err ("internal: " ^ Printexc.to_string exn)
      in
      (match resp with
      | Protocol.Epoch _ -> observe_reload t (Stopwatch.elapsed_ms sw /. 1000.0)
      | _ -> ());
      resp)

let apply_ingest t (docs : Fx_xml.Xml_types.document list) =
  admin_op t (fun () ->
      match Snapshot.current t.snapshot with
      | On_disk _ | Custom _ ->
          Protocol.Err "INGEST requires the in-memory backend (use RELOAD)"
      | In_memory flix -> (
          let coll = Flix.collection flix in
          let seen = Hashtbl.create 8 in
          let clash =
            List.find_opt
              (fun (d : Fx_xml.Xml_types.document) ->
                let dup =
                  Hashtbl.mem seen d.name
                  || Option.is_some (Collection.doc_of_name coll d.name)
                in
                Hashtbl.replace seen d.name ();
                dup)
              docs
          in
          match clash with
          | Some d ->
              Protocol.Err
                (Printf.sprintf "document %s already exists in the collection" d.name)
          | None ->
              let old_n = Collection.n_nodes coll in
              let next = Flix.extend flix docs in
              let scope =
                Delta.extend_scope ~old_n_nodes:old_n (Flix.collection next)
              in
              Protocol.Epoch (publish_swap t ~scope (In_memory next))))

let apply_evict t names =
  admin_op t (fun () ->
      match Snapshot.current t.snapshot with
      | On_disk _ | Custom _ -> Protocol.Err "EVICT requires the in-memory backend"
      | In_memory flix -> (
          let coll = Flix.collection flix in
          match
            List.find_opt
              (fun name -> Option.is_none (Collection.doc_of_name coll name))
              names
          with
          | Some name -> Protocol.Err (Printf.sprintf "unknown document %s" name)
          | None ->
              let next = Flix.remove flix names in
              (* Node ids shift after the first removed document, so no
                 tag-scoped survival argument holds: flush everything. *)
              Protocol.Epoch (publish_swap t ~scope:Delta.All (In_memory next))))

let apply_reload t =
  match t.admin with
  | None -> Protocol.Err "RELOAD is not configured for this server"
  | Some a ->
      admin_op t (fun () ->
          match a.admin_reload () with
          | Error msg -> Protocol.Err ("reload failed: " ^ msg)
          | Ok next -> Protocol.Epoch (publish_swap t ~scope:Delta.All next))

(* --- connection handling (thread side) ------------------------------ *)

let write_line oc line =
  output_string oc line;
  output_char oc '\n'

let write_response oc resp =
  List.iter (write_line oc) (Protocol.response_lines resp);
  flush oc

(* Drain the mailbox, writing and flushing ITEM lines as they arrive —
   the incremental half of the streaming contract. Returns the emitted
   count and the terminal response; because the worker sets [resp] last
   under the mailbox mutex, a critical section that observes [Some _]
   has also handed over every remaining item. *)
let drain_stream mb oc =
  let emitted = ref 0 in
  let rec loop () =
    let batch, fin =
      with_lock mb.m (fun () ->
          while mb.items = [] && mb.resp = None do
            Condition.wait mb.c mb.m
          done;
          let batch = List.rev mb.items in
          mb.items <- [];
          (batch, mb.resp))
    in
    if batch <> [] then begin
      List.iter (fun it -> write_line oc (Protocol.item_line it)) batch;
      flush oc;
      emitted := !emitted + List.length batch
    end;
    match fin with Some r -> r | None -> loop ()
  in
  let resp = loop () in
  (!emitted, resp)

let finish_stream oc ~emitted resp =
  match resp with
  | Protocol.Items { items; timed_out; partial } ->
      List.iter (fun it -> write_line oc (Protocol.item_line it)) items;
      write_line oc
        (Protocol.items_trailer
           ~count:(emitted + List.length items)
           ~timed_out ~partial);
      flush oc
  | resp when emitted = 0 -> write_response oc resp
  | _ ->
      (* Items already went out, so the framing is committed to a stream:
         close it with a PARTIAL trailer instead of smuggling an ERR/BUSY
         line into the item stream. The condition is recorded in the
         error metrics by the caller. *)
      write_line oc (Protocol.items_trailer ~count:emitted ~timed_out:false ~partial:true);
      flush oc

let handle_request t oc line =
  match Protocol.parse_envelope line with
  | Error msg ->
      Metrics.incr_errors t.metrics;
      write_response oc (Protocol.Err msg)
  | Ok { deadline_ms; req } ->
      let verb = Protocol.verb req in
      Metrics.incr_requests t.metrics ~verb;
      let sw = Stopwatch.start () in
      if not (Protocol.pool_bound req) then begin
        (* Inline plane: PING and METRICS must work on a saturated
           server, and the admin verbs run on the connection thread
           under the admin lock instead of occupying a worker. *)
        let resp =
          match req with
          | Protocol.Ping -> Protocol.Pong
          | Protocol.Metrics -> Protocol.Lines (Metrics.render t.metrics)
          | Protocol.Epoch_query -> Protocol.Epoch (Snapshot.epoch t.snapshot)
          | Protocol.Evict names -> apply_evict t names
          | Protocol.Reload -> apply_reload t
          | _ -> assert false
        in
        (match resp with
        | Protocol.Err _ -> Metrics.incr_errors t.metrics
        | _ -> ());
        write_response oc resp;
        Metrics.observe_ms t.metrics ~verb (Stopwatch.elapsed_ms sw)
      end
      else begin
        let budget_ms =
          match deadline_ms with
          | Some ms -> float_of_int ms
          | None -> t.cfg.deadline_ms
        in
        let deadline_ns =
          Int64.add (Stopwatch.now_ns ()) (Int64.of_float (budget_ms *. 1e6))
        in
        let reply =
          { m = Mutex.create (); c = Condition.create (); items = []; resp = None }
        in
        let job = { req; deadline_ns; reply } in
        if not (Work_queue.try_push t.queue job) then begin
          Metrics.incr_rejected t.metrics;
          write_response oc Protocol.Busy
        end
        else begin
          let emitted, resp = drain_stream reply oc in
          Metrics.observe_ms t.metrics ~verb (Stopwatch.elapsed_ms sw);
          (match resp with
          | Protocol.Items { timed_out = true; _ } -> Metrics.incr_timeouts t.metrics ~verb
          | Protocol.Err _ -> Metrics.incr_errors t.metrics
          | _ -> ());
          finish_stream oc ~emitted resp
        end
      end

(* --- batches -------------------------------------------------------- *)

(* Write one finished sub-response: the SUB header, the items the worker
   pushed into the mailbox, and the trailer (or the bare response when
   nothing streamed). Mirrors [finish_stream]'s framing rules. *)
let write_sub oc i items resp =
  write_line oc (Protocol.sub_line i);
  (match resp with
  | Protocol.Items { items = tail; timed_out; partial } ->
      List.iter (fun it -> write_line oc (Protocol.item_line it)) items;
      List.iter (fun it -> write_line oc (Protocol.item_line it)) tail;
      write_line oc
        (Protocol.items_trailer
           ~count:(List.length items + List.length tail)
           ~timed_out ~partial)
  | resp when items = [] -> List.iter (write_line oc) (Protocol.response_lines resp)
  | _ ->
      List.iter (fun it -> write_line oc (Protocol.item_line it)) items;
      write_line oc
        (Protocol.items_trailer ~count:(List.length items) ~timed_out:false
           ~partial:true));
  flush oc

(* Fan the [n] parsed-or-failed sub-request lines of one batch across
   the worker pool and write SUB-tagged answers back in completion
   order. One mutex/condvar pair serves every sub-mailbox: workers
   signal it as they emit and finish, and this (connection) thread
   wakes, scans for newly finished subs, and flushes each one whole.
   Batch items are buffered per sub rather than interleaved on the wire
   — a batch is a probe plane, not a streaming plane.

   Admission control happened for the batch as a whole, so sub-requests
   meet a full queue with {e backpressure}, not BUSY: pushes resume as
   this batch's own jobs complete (or, when the queue is full of other
   connections' work, by short polls). Sub-requests still unpushed when
   the deadline expires answer [TIMEOUT 0], exactly like a queued job
   whose deadline expired. *)
let handle_batch t oc ~deadline_ms lines =
  let n = Array.length lines in
  Metrics.incr_requests t.metrics ~verb:"batch";
  let sw = Stopwatch.start () in
  let budget_ms =
    match deadline_ms with Some ms -> float_of_int ms | None -> t.cfg.deadline_ms
  in
  let deadline_ns = Int64.add (Stopwatch.now_ns ()) (Int64.of_float (budget_ms *. 1e6)) in
  let m = Mutex.create () in
  let c = Condition.create () in
  let boxes = Array.init n (fun _ -> { m; c; items = []; resp = None }) in
  let verbs = Array.make n "other" in
  (* Parse every sub. Slots that fail locally (malformed, disallowed
     verb) are answered in place — no worker ever owns their mailbox, so
     writing [resp] directly is unshared here: only this thread touches
     it again, in the writer loop below. *)
  let to_push = ref [] in
  Array.iteri
    (fun i line ->
      match line with
      | Error msg ->
          Metrics.incr_errors t.metrics;
          boxes.(i).resp <- Some (Protocol.Err msg)
      | Ok line -> (
          match Protocol.parse_request line with
          | Error msg ->
              Metrics.incr_errors t.metrics;
              boxes.(i).resp <- Some (Protocol.Err msg)
          | Ok req when not (Protocol.batch_allowed req) ->
              Metrics.incr_errors t.metrics;
              boxes.(i).resp <-
                Some
                  (Protocol.Err
                     (Printf.sprintf "verb %s not allowed in a batch"
                        (String.uppercase_ascii (Protocol.verb req))))
          | Ok req ->
              verbs.(i) <- Protocol.verb req;
              Metrics.incr_requests t.metrics ~verb:verbs.(i);
              to_push := (i, { req; deadline_ns; reply = boxes.(i) }) :: !to_push))
    lines;
  let to_push = ref (List.rev !to_push) in
  let in_flight = ref 0 in
  let pushed = Array.make n false in
  (* Push pending jobs until the queue refuses; an expired deadline
     answers the rest without burning worker time on them. *)
  let rec push_more () =
    match !to_push with
    | [] -> ()
    | (i, job) :: rest ->
        if expired deadline_ns then begin
          boxes.(i).resp <- Some (no_items ~timed_out:true ());
          to_push := rest;
          push_more ()
        end
        else if Work_queue.try_push t.queue job then begin
          incr in_flight;
          pushed.(i) <- true;
          to_push := rest;
          push_more ()
        end
  in
  let written = Array.make n false in
  let find_ready () =
    let rec go i =
      if i >= n then None
      else if (not written.(i)) && Option.is_some boxes.(i).resp then
        Some (i, List.rev boxes.(i).items, Option.get boxes.(i).resp)
      else go (i + 1)
    in
    go 0
  in
  let rec drain remaining =
    if remaining > 0 then begin
      push_more ();
      let ready =
        with_lock m (fun () ->
            match find_ready () with
            | Some _ as r -> r
            | None ->
                (* Wait only when one of our own jobs is in flight — its
                   completion signals [c] (under [m], so the re-check
                   cannot miss it). With nothing in flight the queue is
                   full of other connections' work: poll. *)
                if !in_flight > 0 then Condition.wait c m;
                find_ready ())
      in
      match ready with
      | None ->
          if !in_flight = 0 then Thread.delay 0.002;
          drain remaining
      | Some (i, items, resp) ->
          written.(i) <- true;
          if pushed.(i) then decr in_flight;
          (match resp with
          | Protocol.Items { timed_out = true; _ } ->
              Metrics.incr_timeouts t.metrics ~verb:verbs.(i)
          | Protocol.Err _ when verbs.(i) <> "other" ->
              (* "other" slots were counted at parse time. *)
              Metrics.incr_errors t.metrics
          | _ -> ());
          write_sub oc i items resp;
          drain (remaining - 1)
    end
  in
  drain n;
  Metrics.observe_ms t.metrics ~verb:"batch" (Stopwatch.elapsed_ms sw)

(* Read one request line while buffering at most [max_bytes]: a client
   cannot exhaust memory by streaming an endless line (input_line would
   buffer it whole). Past the cap the rest of the line is read and
   discarded so the framing stays intact and the connection survives
   with an ERR, like any other malformed request. *)
let read_request_line ic ~max_bytes =
  let buf = Buffer.create 128 in
  let rec go overflowed =
    match input_char ic with
    | '\n' -> if overflowed then `Overflow else `Line (Buffer.contents buf)
    | c ->
        if overflowed || Buffer.length buf >= max_bytes then go true
        else begin
          Buffer.add_char buf c;
          go false
        end
    | exception End_of_file ->
        if overflowed then `Overflow
        else if Buffer.length buf = 0 then `Eof
        else `Line (Buffer.contents buf)
  in
  go false

let conn_loop t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let cleanup () =
    with_lock t.conns_lock (fun () -> Hashtbl.remove t.conns fd);
    (try Unix.close fd with Unix.Unix_error _ -> ())
  in
  (* Pull the [n] sub-request lines of a batch. An oversized line fails
     only its slot; a vanished client aborts the whole batch (there is
     nowhere to answer). *)
  let read_batch_lines n =
    let lines = Array.make n (Error "missing sub-request") in
    let rec go i =
      if i >= n then Some lines
      else
        match read_request_line ic ~max_bytes:t.cfg.max_line_bytes with
        | `Eof -> None
        | `Overflow ->
            lines.(i) <-
              Error
                (Printf.sprintf "request line exceeds %d bytes" t.cfg.max_line_bytes);
            go (i + 1)
        | `Line line ->
            lines.(i) <- Ok line;
            go (i + 1)
    in
    go 0
  in
  (* An over-cap batch still consumes its announced sub-request lines so
     the connection framing survives the single ERR answer. *)
  let discard_batch_lines n =
    let rec go i =
      if i >= n then true
      else
        match read_request_line ic ~max_bytes:t.cfg.max_line_bytes with
        | `Eof -> false
        | `Overflow | `Line _ -> go (i + 1)
    in
    go 0
  in
  (* Pull the [n] document frames of an ingest envelope. A recoverable
     failure (oversized document, bad XML caught later) still consumes
     the whole envelope so a single ERR keeps the framing intact; a
     malformed or oversized [DOC] header loses the framing — there is no
     way to know how many lines follow — so the caller answers ERR and
     closes. [keep = false] consumes without accumulating (over-cap
     envelopes). *)
  let read_ingest_frames ~keep n =
    let fail = ref None in
    let note msg = if Option.is_none !fail then fail := Some msg in
    let rec read_body name j acc =
      if j = 0 then Some (List.rev acc)
      else
        match read_request_line ic ~max_bytes:t.cfg.max_line_bytes with
        | `Eof -> None
        | `Overflow ->
            note
              (Printf.sprintf "document %s: line exceeds %d bytes" name
                 t.cfg.max_line_bytes);
            read_body name (j - 1) acc
        | `Line l -> read_body name (j - 1) (if keep then l :: acc else acc)
    in
    let rec go i acc =
      if i >= n then
        match !fail with Some msg -> `Fail msg | None -> `Docs (List.rev acc)
      else
        match read_request_line ic ~max_bytes:t.cfg.max_line_bytes with
        | `Eof -> `Eof
        | `Overflow ->
            `Abort
              (Printf.sprintf "DOC header exceeds %d bytes" t.cfg.max_line_bytes)
        | `Line l -> (
            match Protocol.parse_doc_line l with
            | Error msg -> `Abort msg
            | Ok (name, n_lines) ->
                if n_lines > t.cfg.max_ingest_lines then begin
                  note
                    (Printf.sprintf "document %s: %d lines exceeds cap %d" name
                       n_lines t.cfg.max_ingest_lines);
                  match read_body name n_lines [] with
                  | None -> `Eof
                  | Some _ -> go (i + 1) acc
                end
                else
                  match read_body name n_lines [] with
                  | None -> `Eof
                  | Some lines ->
                      go (i + 1) ((name, String.concat "\n" lines) :: acc))
    in
    go 0 []
  in
  (* Parse every framed document body; the first bad one fails the whole
     envelope (the swap is all-or-nothing anyway). *)
  let parse_ingest_docs raw =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | (name, body) :: rest -> (
          match Xml_parser.parse ~name body with
          | Ok doc -> go (doc :: acc) rest
          | Error e ->
              Error
                (Printf.sprintf "document %s: %s" name
                   (Xml_parser.error_to_string e)))
    in
    go [] raw
  in
  let handle_ingest n loop =
    Metrics.incr_requests t.metrics ~verb:"ingest";
    let sw = Stopwatch.start () in
    if n > t.cfg.max_batch then begin
      Metrics.incr_errors t.metrics;
      match read_ingest_frames ~keep:false n with
      | `Eof -> ()
      | `Abort msg -> write_response oc (Protocol.Err msg)
      | `Fail _ | `Docs _ ->
          write_response oc
            (Protocol.Err (Printf.sprintf "ingest size exceeds %d" t.cfg.max_batch));
          loop ()
    end
    else
      match read_ingest_frames ~keep:true n with
      | `Eof -> ()
      | `Abort msg ->
          Metrics.incr_errors t.metrics;
          write_response oc (Protocol.Err msg)
      | `Fail msg ->
          Metrics.incr_errors t.metrics;
          write_response oc (Protocol.Err msg);
          loop ()
      | `Docs raw -> (
          match parse_ingest_docs raw with
          | Error msg ->
              Metrics.incr_errors t.metrics;
              write_response oc (Protocol.Err msg);
              loop ()
          | Ok docs ->
              let resp = apply_ingest t docs in
              (match resp with
              | Protocol.Err _ -> Metrics.incr_errors t.metrics
              | _ -> ());
              write_response oc resp;
              Metrics.observe_ms t.metrics ~verb:"ingest" (Stopwatch.elapsed_ms sw);
              loop ())
  in
  let serve () =
    let rec loop () =
      match read_request_line ic ~max_bytes:t.cfg.max_line_bytes with
      | `Eof -> ()
      | `Overflow ->
          Metrics.incr_errors t.metrics;
          write_response oc
            (Protocol.Err
               (Printf.sprintf "request line exceeds %d bytes"
                  t.cfg.max_line_bytes));
          loop ()
      | `Line line -> (
          match Protocol.parse_framed line with
          | Ok (Protocol.Batch { deadline_ms; n }) when n <= t.cfg.max_batch -> (
              match read_batch_lines n with
              | None -> ()
              | Some lines ->
                  handle_batch t oc ~deadline_ms lines;
                  loop ())
          | Ok (Protocol.Batch { n; _ }) ->
              Metrics.incr_errors t.metrics;
              if discard_batch_lines n then begin
                write_response oc
                  (Protocol.Err
                     (Printf.sprintf "batch size exceeds %d" t.cfg.max_batch));
                loop ()
              end
          | Ok (Protocol.Ingest { n }) -> handle_ingest n loop
          | Ok (Protocol.Single _) | Error _ ->
              (* [handle_request] re-parses and owns the ERR answer for
                 malformed lines. *)
              handle_request t oc line;
              loop ())
    in
    (* The try must wrap the whole loop body, not just the read: with
       SIGPIPE ignored, a client that vanishes mid-response surfaces as
       EPIPE/ECONNRESET (Sys_error or Unix_error) from write_response's
       flush, and that too must fall through to cleanup, not escape the
       thread. *)
    try loop () with End_of_file | Sys_error _ | Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally:cleanup serve

(* Acceptor-side admission: threads and fds are one-per-connection, so
   without a cap a client herd could exhaust both even though the work
   queue itself is bounded. *)
let over_conn_cap t =
  let n = with_lock t.conns_lock (fun () -> Hashtbl.length t.conns) in
  n >= t.cfg.max_connections

let reject_connection fd =
  let busy = Bytes.of_string "BUSY\n" in
  (try ignore (Unix.write fd busy 0 (Bytes.length busy))
   with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t () =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
        if over_conn_cap t then begin
          Metrics.incr_rejected t.metrics;
          reject_connection fd;
          loop ()
        end
        else begin
          (try Unix.setsockopt fd Unix.TCP_NODELAY true
           with Unix.Unix_error _ -> ());
          with_lock t.conns_lock (fun () -> Hashtbl.replace t.conns fd ());
          ignore (Thread.create (conn_loop t) fd);
          loop ()
        end
    | exception Unix.Unix_error (err, _, _) ->
        if Atomic.get t.running then begin
          (* EINTR is benign; under fd exhaustion (EMFILE/ENFILE) accept
             fails persistently, so back off instead of busy-spinning at
             100% CPU until connections drain. *)
          (match err with
          | Unix.EINTR -> ()
          | Unix.EMFILE | Unix.ENFILE -> Thread.delay 0.05
          | _ -> Thread.delay 0.01);
          loop ()
        end
    | exception Sys_error _ -> ()
  in
  loop ()

(* --- lifecycle ------------------------------------------------------ *)

let start_backend ?(config = default_config) ?admin backend =
  (* A client that closes before its response is fully written must
     surface as EPIPE on the write — the default SIGPIPE disposition
     would terminate the whole process. Invalid_argument covers
     platforms without SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port) in
  (try Unix.bind listen_fd addr
   with e ->
     Unix.close listen_fd;
     raise e);
  Unix.listen listen_fd 64;
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> config.port
  in
  let retire old =
    match admin with Some a -> a.admin_retire old | None -> ()
  in
  let t =
    {
      cfg = config;
      snapshot = Snapshot.create ~retire backend;
      admin;
      admin_m = Mutex.create ();
      eval_cache = Eval_cache.create ~capacity:config.eval_cache_capacity;
      reload_hist =
        {
          rh_m = Mutex.create ();
          rh_counts = Array.make (Array.length reload_buckets_s + 1) 0;
          rh_sum = 0.0;
          rh_count = 0;
        };
      listen_fd;
      bound_port;
      metrics = Metrics.create ();
      queue = Work_queue.create ~capacity:config.queue_capacity;
      workers = [];
      acceptor = None;
      running = Atomic.make true;
      conns = Hashtbl.create 16;
      conns_lock = Mutex.create ();
    }
  in
  (* The disk pool collector pins the snapshot per scrape: after a
     RELOAD swaps the deployment out, the retire hook may close the old
     handle, so the collector must read whichever handle is current. *)
  (match backend with
  | In_memory _ | Custom _ -> ()
  | On_disk _ ->
      Metrics.register_collector t.metrics (fun () ->
          let epoch, b = Snapshot.pin t.snapshot in
          Fun.protect
            ~finally:(fun () -> Snapshot.unpin t.snapshot epoch)
            (fun () ->
              match b with
              | On_disk { hopi; _ } -> pool_metric_lines hopi ()
              | In_memory _ | Custom _ -> [])));
  Metrics.register_collector t.metrics (snapshot_metric_lines t);
  t.workers <- List.init (max 1 config.workers) (fun _ -> Domain.spawn (worker_loop t));
  t.acceptor <- Some (Thread.create (accept_loop t) ());
  t

let start ?config flix = start_backend ?config (In_memory flix)

let port t = t.bound_port
let metrics t = t.metrics
let config t = t.cfg
let current_backend t = Snapshot.current t.snapshot
let epoch t = Snapshot.epoch t.snapshot

let stop t =
  if Atomic.compare_and_set t.running true false then begin
    (* No new connections or jobs; queued jobs still get answered. *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    Work_queue.close t.queue;
    List.iter Domain.join t.workers;
    t.workers <- [];
    (match t.acceptor with Some th -> Thread.join th | None -> ());
    t.acceptor <- None;
    let fds =
      with_lock t.conns_lock (fun () ->
          Hashtbl.fold (fun fd () acc -> fd :: acc) t.conns [])
    in
    List.iter
      (fun fd ->
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      fds
  end
