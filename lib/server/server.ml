module Flix = Fx_flix.Flix
module Pee = Fx_flix.Pee
module RS = Fx_flix.Result_stream
module Collection = Fx_xml.Collection
module Stopwatch = Fx_util.Stopwatch
module Disk_hopi = Fx_index.Disk_hopi
module Catalog = Fx_index.Catalog

type config = {
  host : string;
  port : int;
  workers : int;
  queue_capacity : int;
  deadline_ms : float;
  max_results : int;
  max_line_bytes : int;
  max_connections : int;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    workers = 4;
    queue_capacity = 64;
    deadline_ms = 2000.0;
    max_results = 10_000;
    max_line_bytes = 8192;
    max_connections = 1024;
  }

(* Every lock in this module is taken through this wrapper: the critical
   sections are tiny, but several of them run Hashtbl operations or
   Condition waits that can raise, and an unlocked-on-raise mutex would
   wedge the acceptor or a worker forever (FL001). *)
let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* A job travels from the connection thread to a worker domain and its
   response travels back through the mailbox — a one-shot cell so the
   connection thread can write responses in request order. *)
type mailbox = {
  m : Mutex.t;
  c : Condition.t;
  mutable resp : Protocol.response option;
}

type job = { req : Protocol.request; deadline_ns : int64; reply : mailbox }

(* What the worker pool evaluates against. [In_memory] is the original
   regime: shared immutable indexes, a private PEE per domain.
   [On_disk] serves straight from a persistent {!Disk_hopi} deployment —
   the thread-safe pager lets every domain share one handle, and the
   catalog resolves document/anchor/tag names without the collection. *)
type backend =
  | In_memory of Flix.t
  | On_disk of { hopi : Disk_hopi.t; catalog : Catalog.t }

type t = {
  cfg : config;
  backend : backend;
  listen_fd : Unix.file_descr;
  bound_port : int;
  metrics : Metrics.t;
  queue : job Work_queue.t;
  mutable workers : unit Domain.t list;
  mutable acceptor : Thread.t option;
  running : bool Atomic.t;
  conns : (Unix.file_descr, unit) Hashtbl.t;
  conns_lock : Mutex.t;
}

(* --- evaluation (worker side) --------------------------------------- *)

let expired deadline_ns = Stopwatch.now_ns () > deadline_ns

(* Pull up to [k] items, checking the deadline after each one: a query
   that finds anything always returns at least its first item, and a
   zero deadline still times out deterministically. *)
let pull_items ~deadline_ns ~k stream =
  let rec go acc n =
    if n >= k then (List.rev acc, false)
    else
      match RS.next stream with
      | None -> (List.rev acc, false)
      | Some (it : Pee.item) ->
          let acc =
            { Protocol.node = it.node; dist = it.dist; meta = it.meta } :: acc
          in
          if expired deadline_ns then (List.rev acc, true) else go acc (n + 1)
  in
  go [] 0

(* Tag names resolve like Flix.tag_arg: unknown tag -> the PEE's
   "match nothing" sentinel, not an error — heterogeneous collections
   routinely lack a tag. *)
let tag_arg coll = function
  | None -> None
  | Some name -> Some (Option.value ~default:(-1) (Collection.tag_id coll name))

(* Sleep in short slices so the deadline can cut it off — the
   diagnostic stand-in for a long-running query. *)
let nap ~deadline_ns ms =
  let rec go remaining =
    if expired deadline_ns then Protocol.Items { items = []; timed_out = true }
    else if remaining <= 0 then Protocol.Ok_done
    else begin
      let slice = min remaining 5 in
      Thread.delay (float_of_int slice /. 1000.0);
      go (remaining - slice)
    end
  in
  go ms

let evaluate_memory t flix pee (job : job) : Protocol.response =
  let coll = Flix.collection flix in
  let k_cap k = min k t.cfg.max_results in
  match job.req with
  | (Protocol.Stats | Protocol.Connected _) when expired job.deadline_ns ->
      (* Expired while queued: answer TIMEOUT up front rather than burn
         worker time on a full answer the deadline policy has already
         cut — under overload that work only amplifies the backlog. The
         streaming verbs (and SLEEP) below check per item and keep their
         at-least-one-item guarantee. *)
      Protocol.Items { items = []; timed_out = true }
  | Protocol.Ping -> Protocol.Pong
  | Protocol.Metrics -> Protocol.Lines (Metrics.render t.metrics)
  | Protocol.Stats ->
      Protocol.Lines (String.split_on_char '\n' (Flix.report flix))
  | Protocol.Sleep ms -> nap ~deadline_ns:job.deadline_ns ms
  | Protocol.Connected { a; b; max_dist } ->
      let n = Collection.n_nodes coll in
      if a < 0 || a >= n || b < 0 || b >= n then
        Protocol.Err (Printf.sprintf "node id out of range [0, %d)" n)
      else Protocol.Dist (Pee.connected ?max_dist pee a b)
  | Protocol.Descendants { doc; anchor; tag; k; max_dist } -> (
      match Flix.node_of flix ~doc ~anchor with
      | None ->
          Protocol.Err
            (Printf.sprintf "unknown document or anchor %s%s" doc
               (match anchor with None -> "" | Some a -> "#" ^ a))
      | Some start ->
          let stream =
            Pee.descendants ?tag:(tag_arg coll tag) ?max_dist pee ~start
          in
          let items, timed_out =
            pull_items ~deadline_ns:job.deadline_ns ~k:(k_cap k) stream
          in
          Protocol.Items { items; timed_out })
  | Protocol.Evaluate { start_tag; target_tag; k; max_dist } ->
      let starts = Collection.find_by_tag coll start_tag in
      let stream =
        Pee.descendants_multi
          ?tag:(tag_arg coll (Some target_tag))
          ?max_dist pee ~starts
      in
      let items, timed_out =
        pull_items ~deadline_ns:job.deadline_ns ~k:(k_cap k) stream
      in
      Protocol.Items { items; timed_out }

(* --- disk-backed evaluation ----------------------------------------- *)

let unknown_doc_err doc anchor =
  Protocol.Err
    (Printf.sprintf "unknown document or anchor %s%s" doc
       (match anchor with None -> "" | Some a -> "#" ^ a))

let within_dist max_dist d =
  match max_dist with None -> true | Some m -> d <= m

let take k l = List.filteri (fun i _ -> i < k) l

let items_of_pairs ?(timed_out = false) pairs =
  Protocol.Items
    {
      items = List.map (fun (node, dist) -> { Protocol.node; dist; meta = 0 }) pairs;
      timed_out;
    }

let disk_report hopi catalog =
  let module P = Fx_store.Pager in
  let pager name (s : P.stats) =
    Printf.sprintf "%s pager: %d logical reads, %d physical reads, %d physical writes"
      name s.P.logical_reads s.P.physical_reads s.P.physical_writes
  in
  let labels, tags = Disk_hopi.stats hopi in
  [
    "backend: disk (persistent HOPI deployment)";
    Printf.sprintf "%d nodes, %d documents, %d tag names" (Catalog.n_nodes catalog)
      (Catalog.n_docs catalog) (Catalog.n_tags catalog);
    pager "labels" labels;
    pager "tags" tags;
  ]

(* The buffer-pool counters of the shared deployment, as extra
   Prometheus series on the METRICS endpoint. *)
let pool_metric_lines hopi () =
  let module P = Fx_store.Pager in
  let labels, tags = Disk_hopi.stats hopi in
  let series name help l g =
    [
      Printf.sprintf "# HELP %s %s" name help;
      Printf.sprintf "# TYPE %s counter" name;
      Printf.sprintf "%s{file=\"labels\"} %d" name l;
      Printf.sprintf "%s{file=\"tags\"} %d" name g;
    ]
  in
  series "flix_pager_pool_hits_total"
    "Page reads served from the buffer pool, by index file."
    (labels.P.logical_reads - labels.P.physical_reads)
    (tags.P.logical_reads - tags.P.physical_reads)
  @ series "flix_pager_pool_misses_total"
      "Page reads that went to disk, by index file." labels.P.physical_reads
      tags.P.physical_reads
  @ series "flix_pager_physical_writes_total"
      "Physical page writes (write-backs, extensions, header), by index file."
      labels.P.physical_writes tags.P.physical_writes

(* Unlike the PEE stream, a disk probe computes whole result blocks —
   there is no per-item deadline cut — so every pool verb answers the
   queued-expiry TIMEOUT up front, and EVALUATE re-checks the deadline
   between start nodes. *)
let evaluate_disk t hopi catalog (job : job) : Protocol.response =
  let k_cap k = min k t.cfg.max_results in
  match job.req with
  | Protocol.Ping -> Protocol.Pong
  | Protocol.Metrics -> Protocol.Lines (Metrics.render t.metrics)
  | _ when expired job.deadline_ns -> Protocol.Items { items = []; timed_out = true }
  | Protocol.Stats -> Protocol.Lines (disk_report hopi catalog)
  | Protocol.Sleep ms -> nap ~deadline_ns:job.deadline_ns ms
  | Protocol.Connected { a; b; max_dist } ->
      let n = Catalog.n_nodes catalog in
      if a < 0 || a >= n || b < 0 || b >= n then
        Protocol.Err (Printf.sprintf "node id out of range [0, %d)" n)
      else
        Protocol.Dist
          (match Disk_hopi.distance hopi a b with
          | Some d when not (within_dist max_dist d) -> None
          | d -> d)
  | Protocol.Descendants { doc; anchor; tag; k; max_dist } -> (
      match Catalog.node_of catalog ~doc ~anchor with
      | None -> unknown_doc_err doc anchor
      | Some start -> (
          (* Unknown tag names match nothing, like the in-memory path's
             sentinel — and never reach the tag B-tree with a bogus id. *)
          match Option.map (Catalog.tag_id catalog) tag with
          | Some None -> items_of_pairs []
          | (None | Some (Some _)) as resolved ->
              let want = Option.join resolved in
              Disk_hopi.descendants_by_tag hopi start want
              |> List.filter (fun (v, d) ->
                     not (v = start && d = 0) && within_dist max_dist d)
              |> take (k_cap k)
              |> items_of_pairs))
  | Protocol.Evaluate { start_tag; target_tag; k; max_dist } -> (
      match Catalog.tag_id catalog target_tag with
      | None -> items_of_pairs []
      | Some target ->
          let starts =
            match Catalog.tag_id catalog start_tag with
            | None -> []
            | Some id -> Disk_hopi.nodes_by_tag hopi id
          in
          let rec sweep acc timed = function
            | [] -> (acc, timed)
            | _ :: _ when expired job.deadline_ns -> (acc, true)
            | s :: rest ->
                let rs =
                  List.filter
                    (fun (_, d) -> d > 0 && within_dist max_dist d)
                    (Disk_hopi.descendants_by_tag hopi s (Some target))
                in
                sweep (List.rev_append rs acc) timed rest
          in
          let all, timed_out = sweep [] false starts in
          (* Several starts can reach one node; keep its best distance,
             like the engine's duplicate elimination. *)
          let best = Hashtbl.create 64 in
          List.iter
            (fun (v, d) ->
              match Hashtbl.find_opt best v with
              | Some d' when d' <= d -> ()
              | _ -> Hashtbl.replace best v d)
            all;
          Hashtbl.fold (fun v d acc -> (v, d) :: acc) best []
          |> List.sort (fun (v1, d1) (v2, d2) ->
                 match Int.compare d1 d2 with 0 -> Int.compare v1 v2 | c -> c)
          |> take (k_cap k)
          |> items_of_pairs ~timed_out)

let worker_loop t () =
  let eval =
    match t.backend with
    | In_memory flix ->
        (* A private evaluator per domain: the underlying indexes are
           shared and immutable; the PEE's own statistics counters are
           not. *)
        let pee = Pee.create (Flix.built flix) in
        evaluate_memory t flix pee
    | On_disk { hopi; catalog } ->
        (* The pager under [hopi] is domain-safe, so every worker shares
           the one deployment handle — and its buffer pool. *)
        evaluate_disk t hopi catalog
  in
  let rec loop () =
    match Work_queue.pop t.queue with
    | None -> ()
    | Some job ->
        let resp =
          try eval job with
          | (Out_of_memory | Stack_overflow) as fatal ->
              (* Fatal resource exhaustion must not be flattened into an
                 ERR line (FL004); let it take the domain down so stop/
                 join surfaces it. *)
              raise fatal
          | exn -> Protocol.Err ("internal: " ^ Printexc.to_string exn)
        in
        with_lock job.reply.m (fun () ->
            job.reply.resp <- Some resp;
            Condition.signal job.reply.c);
        loop ()
  in
  loop ()

(* --- connection handling (thread side) ------------------------------ *)

let write_response oc resp =
  List.iter
    (fun line ->
      output_string oc line;
      output_char oc '\n')
    (Protocol.response_lines resp);
  flush oc

let await mb =
  with_lock mb.m (fun () ->
      while mb.resp = None do
        Condition.wait mb.c mb.m
      done;
      Option.get mb.resp)

let dispatch t (req : Protocol.request) : Protocol.response =
  if not (Protocol.pool_bound req) then
    (* Inline plane: PING and METRICS must work on a saturated server. *)
    match req with
    | Protocol.Ping -> Protocol.Pong
    | Protocol.Metrics -> Protocol.Lines (Metrics.render t.metrics)
    | _ -> assert false
  else
    let deadline_ns =
      Int64.add (Stopwatch.now_ns ())
        (Int64.of_float (t.cfg.deadline_ms *. 1e6))
    in
    let reply = { m = Mutex.create (); c = Condition.create (); resp = None } in
    let job = { req; deadline_ns; reply } in
    if Work_queue.try_push t.queue job then await reply
    else begin
      Metrics.incr_rejected t.metrics;
      Protocol.Busy
    end

let handle_request t oc line =
  match Protocol.parse_request line with
  | Error msg ->
      Metrics.incr_errors t.metrics;
      write_response oc (Protocol.Err msg)
  | Ok req ->
      let verb = Protocol.verb req in
      Metrics.incr_requests t.metrics ~verb;
      let sw = Stopwatch.start () in
      let resp = dispatch t req in
      Metrics.observe_ms t.metrics ~verb (Stopwatch.elapsed_ms sw);
      (match resp with
      | Protocol.Items { timed_out = true; _ } -> Metrics.incr_timeouts t.metrics ~verb
      | Protocol.Err _ -> Metrics.incr_errors t.metrics
      | _ -> ());
      write_response oc resp

(* Read one request line while buffering at most [max_bytes]: a client
   cannot exhaust memory by streaming an endless line (input_line would
   buffer it whole). Past the cap the rest of the line is read and
   discarded so the framing stays intact and the connection survives
   with an ERR, like any other malformed request. *)
let read_request_line ic ~max_bytes =
  let buf = Buffer.create 128 in
  let rec go overflowed =
    match input_char ic with
    | '\n' -> if overflowed then `Overflow else `Line (Buffer.contents buf)
    | c ->
        if overflowed || Buffer.length buf >= max_bytes then go true
        else begin
          Buffer.add_char buf c;
          go false
        end
    | exception End_of_file ->
        if overflowed then `Overflow
        else if Buffer.length buf = 0 then `Eof
        else `Line (Buffer.contents buf)
  in
  go false

let conn_loop t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let cleanup () =
    with_lock t.conns_lock (fun () -> Hashtbl.remove t.conns fd);
    (try Unix.close fd with Unix.Unix_error _ -> ())
  in
  let serve () =
    let rec loop () =
      match read_request_line ic ~max_bytes:t.cfg.max_line_bytes with
      | `Eof -> ()
      | `Overflow ->
          Metrics.incr_errors t.metrics;
          write_response oc
            (Protocol.Err
               (Printf.sprintf "request line exceeds %d bytes"
                  t.cfg.max_line_bytes));
          loop ()
      | `Line line ->
          handle_request t oc line;
          loop ()
    in
    (* The try must wrap the whole loop body, not just the read: with
       SIGPIPE ignored, a client that vanishes mid-response surfaces as
       EPIPE/ECONNRESET (Sys_error or Unix_error) from write_response's
       flush, and that too must fall through to cleanup, not escape the
       thread. *)
    try loop () with End_of_file | Sys_error _ | Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally:cleanup serve

(* Acceptor-side admission: threads and fds are one-per-connection, so
   without a cap a client herd could exhaust both even though the work
   queue itself is bounded. *)
let over_conn_cap t =
  let n = with_lock t.conns_lock (fun () -> Hashtbl.length t.conns) in
  n >= t.cfg.max_connections

let reject_connection fd =
  let busy = Bytes.of_string "BUSY\n" in
  (try ignore (Unix.write fd busy 0 (Bytes.length busy))
   with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t () =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
        if over_conn_cap t then begin
          Metrics.incr_rejected t.metrics;
          reject_connection fd;
          loop ()
        end
        else begin
          (try Unix.setsockopt fd Unix.TCP_NODELAY true
           with Unix.Unix_error _ -> ());
          with_lock t.conns_lock (fun () -> Hashtbl.replace t.conns fd ());
          ignore (Thread.create (conn_loop t) fd);
          loop ()
        end
    | exception Unix.Unix_error (err, _, _) ->
        if Atomic.get t.running then begin
          (* EINTR is benign; under fd exhaustion (EMFILE/ENFILE) accept
             fails persistently, so back off instead of busy-spinning at
             100% CPU until connections drain. *)
          (match err with
          | Unix.EINTR -> ()
          | Unix.EMFILE | Unix.ENFILE -> Thread.delay 0.05
          | _ -> Thread.delay 0.01);
          loop ()
        end
    | exception Sys_error _ -> ()
  in
  loop ()

(* --- lifecycle ------------------------------------------------------ *)

let start_backend ?(config = default_config) backend =
  (* A client that closes before its response is fully written must
     surface as EPIPE on the write — the default SIGPIPE disposition
     would terminate the whole process. Invalid_argument covers
     platforms without SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port) in
  (try Unix.bind listen_fd addr
   with e ->
     Unix.close listen_fd;
     raise e);
  Unix.listen listen_fd 64;
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> config.port
  in
  let t =
    {
      cfg = config;
      backend;
      listen_fd;
      bound_port;
      metrics = Metrics.create ();
      queue = Work_queue.create ~capacity:config.queue_capacity;
      workers = [];
      acceptor = None;
      running = Atomic.make true;
      conns = Hashtbl.create 16;
      conns_lock = Mutex.create ();
    }
  in
  (match backend with
  | In_memory _ -> ()
  | On_disk { hopi; _ } ->
      Metrics.register_collector t.metrics (pool_metric_lines hopi));
  t.workers <- List.init (max 1 config.workers) (fun _ -> Domain.spawn (worker_loop t));
  t.acceptor <- Some (Thread.create (accept_loop t) ());
  t

let start ?config flix = start_backend ?config (In_memory flix)

let port t = t.bound_port
let metrics t = t.metrics
let config t = t.cfg

let stop t =
  if Atomic.compare_and_set t.running true false then begin
    (* No new connections or jobs; queued jobs still get answered. *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    Work_queue.close t.queue;
    List.iter Domain.join t.workers;
    t.workers <- [];
    (match t.acceptor with Some th -> Thread.join th | None -> ());
    t.acceptor <- None;
    let fds =
      with_lock t.conns_lock (fun () ->
          Hashtbl.fold (fun fd () acc -> fd :: acc) t.conns [])
    in
    List.iter
      (fun fd ->
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      fds
  end
