let verbs =
  [
    "ping"; "stats"; "metrics"; "sleep"; "descendants"; "ancestors"; "connected";
    "evaluate"; "resolve"; "batch"; "ingest"; "evict"; "reload"; "epoch"; "other";
  ]

let n_verbs = List.length verbs

let verb_index verb =
  let rec go i = function
    | [] -> n_verbs - 1 (* "other" *)
    | v :: _ when v = verb -> i
    | _ :: tl -> go (i + 1) tl
  in
  go 0 verbs

(* Upper bounds in milliseconds; +Inf is implicit as the last slot of
   each histogram row. Log-spaced to cover sub-ms index probes up to
   multi-second deadline-bounded scans. *)
let buckets_ms =
  [| 0.1; 0.25; 0.5; 1.0; 2.5; 5.0; 10.0; 25.0; 50.0; 100.0; 250.0; 500.0; 1000.0; 2500.0 |]

let n_buckets = Array.length buckets_ms + 1 (* + the +Inf bucket *)

type t = {
  requests : int Atomic.t array;          (* per verb *)
  timeouts : int Atomic.t array;          (* per verb *)
  rejected : int Atomic.t;
  errors : int Atomic.t;
  hist : int Atomic.t array array;        (* per verb, per bucket (non-cumulative) *)
  obs_count : int Atomic.t array;         (* per verb *)
  (* duration sums as integer nanoseconds: Atomic has no float fetch-add *)
  obs_sum_ns : int Atomic.t array;
  (* extra gauge/counter sources (e.g. buffer-pool stats) appended to
     [render]; the list is tiny and rarely touched, so a plain mutex *)
  mutable collectors : (unit -> string list) list;
  collectors_lock : Mutex.t;
}

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let atomic_row n = Array.init n (fun _ -> Atomic.make 0)

let create () =
  {
    requests = atomic_row n_verbs;
    timeouts = atomic_row n_verbs;
    rejected = Atomic.make 0;
    errors = Atomic.make 0;
    hist = Array.init n_verbs (fun _ -> atomic_row n_buckets);
    obs_count = atomic_row n_verbs;
    obs_sum_ns = atomic_row n_verbs;
    collectors = [];
    collectors_lock = Mutex.create ();
  }

let register_collector t f =
  with_lock t.collectors_lock (fun () -> t.collectors <- t.collectors @ [ f ])

let incr a = Atomic.incr a

let incr_requests t ~verb = incr t.requests.(verb_index verb)
let incr_rejected t = incr t.rejected
let incr_timeouts t ~verb = incr t.timeouts.(verb_index verb)
let incr_errors t = incr t.errors

let bucket_of ms =
  let rec go i =
    if i >= Array.length buckets_ms then i else if ms <= buckets_ms.(i) then i else go (i + 1)
  in
  go 0

let observe_ms t ~verb ms =
  let i = verb_index verb in
  incr t.hist.(i).(bucket_of ms);
  incr t.obs_count.(i);
  ignore (Atomic.fetch_and_add t.obs_sum_ns.(i) (int_of_float (ms *. 1e6)))

let requests_total t ~verb = Atomic.get t.requests.(verb_index verb)
let rejected_total t = Atomic.get t.rejected
let timeouts_total t ~verb = Atomic.get t.timeouts.(verb_index verb)
let errors_total t = Atomic.get t.errors
let observations t ~verb = Atomic.get t.obs_count.(verb_index verb)

(* --- rendering ------------------------------------------------------ *)

let le_label i =
  if i >= Array.length buckets_ms then "+Inf"
  else
    let b = buckets_ms.(i) in
    if Float.is_integer b then Printf.sprintf "%.0f" b else Printf.sprintf "%g" b

let render t =
  let line fmt = Printf.ksprintf (fun s -> s) fmt in
  let per_verb name row =
    List.concat
      (List.mapi
         (fun i verb -> [ line "%s{verb=\"%s\"} %d" name verb (Atomic.get row.(i)) ])
         verbs)
  in
  [
    "# HELP flix_requests_total Requests received, by verb.";
    "# TYPE flix_requests_total counter";
  ]
  @ per_verb "flix_requests_total" t.requests
  @ [
      "# HELP flix_rejected_total Requests rejected by admission control (BUSY).";
      "# TYPE flix_rejected_total counter";
      line "flix_rejected_total %d" (Atomic.get t.rejected);
      "# HELP flix_timeouts_total Requests cut off by their deadline, by verb.";
      "# TYPE flix_timeouts_total counter";
    ]
  @ per_verb "flix_timeouts_total" t.timeouts
  @ [
      "# HELP flix_errors_total Malformed or failed requests answered with ERR.";
      "# TYPE flix_errors_total counter";
      line "flix_errors_total %d" (Atomic.get t.errors);
      "# HELP flix_request_duration_ms Request service time, by verb.";
      "# TYPE flix_request_duration_ms histogram";
    ]
  @ List.concat
      (List.mapi
         (fun vi verb ->
           let row = t.hist.(vi) in
           let cumulative = ref 0 in
           let buckets =
             List.init n_buckets (fun bi ->
                 cumulative := !cumulative + Atomic.get row.(bi);
                 line "flix_request_duration_ms_bucket{verb=\"%s\",le=\"%s\"} %d" verb
                   (le_label bi) !cumulative)
           in
           buckets
           @ [
               line "flix_request_duration_ms_sum{verb=\"%s\"} %.6f" verb
                 (float_of_int (Atomic.get t.obs_sum_ns.(vi)) /. 1e6);
               line "flix_request_duration_ms_count{verb=\"%s\"} %d" verb
                 (Atomic.get t.obs_count.(vi));
             ])
         verbs)
  @ (let collectors = with_lock t.collectors_lock (fun () -> t.collectors) in
     List.concat_map (fun f -> f ()) collectors)
