(** The concurrent FliX query service.

    [start flix] binds a TCP socket and serves the {!Protocol} over it.
    Since {!Fx_flix.Flix.t} is immutable after [build], serving is a
    shared-read problem: each worker runs on its own OCaml 5 [Domain]
    with a private {!Fx_flix.Pee} evaluator over the shared index, so
    queries proceed truly in parallel.

    Request flow: a per-connection thread parses request lines and
    enqueues jobs onto a bounded {!Work_queue} ([BUSY] when full —
    admission control); a worker domain evaluates the job under the
    per-request deadline. Stream verbs are flushed incrementally: the
    worker hands each [ITEM] to the connection thread as it is
    produced, and the connection thread writes and flushes it
    immediately, so a downstream consumer (e.g. the sharded
    coordinator's merge) sees results before the stream ends. The
    trailer ([DONE]/[TIMEOUT]/[PARTIAL]) follows once the worker
    finishes. [PING] and [METRICS] are answered inline, bypassing the
    pool, so the observability plane stays responsive on a saturated
    server.

    Deadlines default to [config.deadline_ms] and can be overridden per
    request with the [DEADLINE <ms>] envelope prefix. They bound the
    verbs that stream results ([DESCENDANTS], [EVALUATE], ...) and
    [SLEEP]; single-probe verbs ([CONNECTED], [STATS]) run to
    completion once started — their work is already bounded — but a
    job whose deadline expired while it sat in the queue is answered
    [TIMEOUT 0] without being evaluated, so an overloaded worker pool
    does not amplify its own backlog.

    Batches: a [BATCH <n>] header fans its [n] sub-requests across the
    worker pool as [n] independent jobs and answers each with a
    [SUB <i>]-tagged response as it completes (completion order, not
    request order) — one round trip for a whole probe wave. The
    [DEADLINE] budget covers the batch: sub-requests still queued when
    it expires answer [TIMEOUT 0]. Admission control happens once for
    the whole batch, so a full work queue backpressures sub-request
    dispatch rather than answering [BUSY] per overflowing sub — a batch
    may legitimately exceed [queue_capacity]. A malformed or
    disallowed sub-request fails only
    its own slot. Batches larger than [max_batch] are consumed and
    answered with a single [ERR], framing intact.

    Resource limits: request lines are buffered up to [max_line_bytes]
    (overflow answers [ERR] with the rest of the line discarded), and
    at most [max_connections] connections are live at once (excess
    connections are answered [BUSY] and closed by the acceptor).
    [start] ignores [SIGPIPE] process-wide so a disconnecting client
    surfaces as a per-connection write error, not a fatal signal.

    Hot reload: the serving backend lives in an {!Fx_admin.Snapshot}.
    The admin verbs ([INGEST], [EVICT], [RELOAD]) build a replacement
    backend on the connection thread — serialized by one admin lock,
    off the worker path — and publish it with a single atomic swap.
    Workers pin the snapshot per job, so in-flight requests finish on
    the epoch they started on and no connection is ever dropped by a
    swap; the old backend is retired (see {!admin}) once its last pin
    drains. Clean [EVALUATE] answers are cached per epoch with
    invalidation scoped to the tag pairs an ingest delta touched
    (see {!Fx_admin.Delta}), so unaffected entries stay warm across
    swaps. The epoch, per-epoch pin counts, swap-duration histogram,
    and cache counters are exported on [METRICS]. *)

type config = {
  host : string;            (** bind address, default ["127.0.0.1"] *)
  port : int;               (** 0 picks an ephemeral port; see {!port} *)
  workers : int;            (** worker domains, default 4 *)
  queue_capacity : int;     (** admission-control bound, default 64 *)
  deadline_ms : float;      (** per-request deadline, default 2000. *)
  max_results : int;        (** hard cap on [k], default 10_000 *)
  max_line_bytes : int;     (** request-line buffer cap, default 8192 *)
  max_connections : int;    (** live-connection cap, default 1024 *)
  max_batch : int;          (** [BATCH] sub-request cap, default 1024 *)
  max_ingest_lines : int;   (** per-document [INGEST] line cap, default 65_536 *)
  eval_cache_capacity : int;
      (** [EVALUATE] answer cache entries, default 256 *)
}

val default_config : config

type custom = {
  custom_eval :
    emit:(Protocol.item -> unit) ->
    deadline_ns:int64 ->
    Protocol.request ->
    Protocol.response;
      (** Evaluate one pool-bound request. Stream verbs push their
          items through [emit] — each is flushed to the client as an
          [ITEM] line immediately — and return
          [Items { items = []; ... }] whose flags select the trailer.
          [deadline_ns] is the absolute {!Fx_util.Stopwatch.now_ns}
          deadline. Runs on a worker domain: it must be safe to call
          from several domains at once. *)
  custom_stats : unit -> string list;
      (** The [STATS] payload. *)
}

type backend =
  | In_memory of Fx_flix.Flix.t
      (** The original regime: shared immutable indexes, a private
          {!Fx_flix.Pee} evaluator per worker domain. *)
  | On_disk of { hopi : Fx_index.Disk_hopi.t; catalog : Fx_index.Catalog.t }
      (** Serve from a persistent {!Fx_index.Disk_hopi} deployment: the
          thread-safe pager lets every worker domain share one handle
          (and one buffer pool), and the {!Fx_index.Catalog} resolves
          document, anchor, and tag names without the collection. The
          deployment's pool hit/miss counters are exported on the
          [METRICS] endpoint. *)
  | Custom of custom
      (** Delegate pool-bound requests to an external evaluator while
          keeping the server's socket handling, admission control,
          deadlines, metrics, and incremental flushing. The sharded
          scatter-gather coordinator ({!Fx_shard.Coordinator}) plugs in
          here. [PING]/[METRICS] stay inline; [SLEEP] is served by the
          worker itself. *)

type admin = {
  admin_reload : unit -> (backend, string) result;
      (** Build a fresh backend for [RELOAD] (typically by re-reading
          the deployment the server was started from). Runs on the
          connection thread under the admin lock; an [Error] answers
          [ERR] and leaves the serving snapshot untouched. *)
  admin_retire : backend -> unit;
      (** Called exactly once per replaced backend, after its last
          pinned request finishes — the place to close an [On_disk]
          deployment handle. Never called while the backend can still
          serve a request. *)
}
(** The reload hooks wired in by the process that owns the backend's
    resources ({!Fx_bin} deployments, file handles). Without them
    [RELOAD] answers [ERR]; [INGEST]/[EVICT] still work on the
    in-memory backend (the old {!Fx_flix.Flix.t} needs no cleanup). *)

type t

val start_backend : ?config:config -> ?admin:admin -> backend -> t
(** Binds, listens, and spawns the acceptor thread and worker domains.
    Returns once the server accepts connections. Raises [Unix_error]
    when the port cannot be bound. The {e initial} backend (and for
    [On_disk], the deployment handle) must outlive the server until a
    swap retires it; {!stop} does not close it — use
    {!current_backend} to find what is live at shutdown. *)

val start : ?config:config -> Fx_flix.Flix.t -> t
(** [start flix] is [start_backend (In_memory flix)]. *)

val port : t -> int
(** The actual bound port — useful with [port = 0]. *)

val metrics : t -> Metrics.t
val config : t -> config

val current_backend : t -> backend
(** The serving backend right now — after reloads this is not the one
    passed to {!start_backend}. The caller that owns backend resources
    should close {e this} one at shutdown (retired ones were already
    handed to [admin_retire]). *)

val epoch : t -> int
(** The serving snapshot's epoch (starts at 1, +1 per swap). *)

val stop : t -> unit
(** Stops accepting, drains queued jobs (every admitted request is
    answered), joins the worker domains, and closes all connections.
    Idempotent. *)
