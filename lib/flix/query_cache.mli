(** Result caching for descendant queries — the paper's future-work item
    "caching results of frequent (sub-)queries" (Section 7).

    A cache wraps a {!Pee.t}. On a miss the query runs through the PEE
    and the {e complete} materialised result list is stored under
    (start, tag, max_dist); hits replay it as a stream at memory speed.
    Entries are bounded by an LRU policy on the query key plus a cap on
    cached results per entry (streams that were cut off by the client
    are not cached — they are incomplete).

    The cache key includes [max_dist] because a bounded query's results
    are not a prefix of the unbounded one (the PEE's order is
    approximate). An entry whose result list exceeds [max_results] is
    not stored. *)

type t

val create : ?capacity:int -> ?max_results:int -> Pee.t -> t
(** Defaults: 256 entries, 10,000 results per entry. *)

val descendants :
  ?tag:int -> ?max_dist:int -> t -> start:int -> Pee.item Result_stream.t
(** Cached version of {!Pee.descendants}. The first pull of a miss pays
    for the full evaluation (materialisation); hits stream instantly. *)

val invalidate : t -> unit
(** Drop everything — call after the underlying index is rebuilt. *)

val invalidate_tags : t -> int list -> unit
(** Scoped invalidation: drop entries restricted to one of the given
    tag ids, plus wildcard entries; everything else stays warm. Sound
    when the delta is tag-bounded (see {!Fx_admin.Delta.extend_scope}):
    node ids are stable and no link crosses into the old range, so an
    entry on an untouched tag still lists exactly the right nodes. *)

val rebase : t -> pee:Pee.t -> keep:(tag:int option -> bool) -> t
(** A cache over the rebuilt engine [pee] (same capacity and result
    cap) carrying over the entries whose tag restriction satisfies
    [keep] — how a snapshot swap keeps unaffected entries warm. *)

type cache_stats = { entries : int; hits : int; misses : int; hit_rate : float }

val stats : t -> cache_stats
