(** Logging source for the framework.

    The single sanctioned output path for library code (FL005): nothing
    under [lib/] writes to stdout/stderr directly; it logs here and the
    application decides by installing (or not installing) a [Logs]
    reporter. Silent by default. *)

val src : Logs.src
(** The ["flix"] source, for applications that want to set its level
    independently ([Logs.Src.set_level]). *)

include Logs.LOG
