module Path_index = Fx_index.Path_index

type impl = Ppo_tree of Fx_index.Ppo.t | Opaque

type built = {
  meta : Meta_document.t;
  strategy : Strategy_selector.strategy;
  index : Path_index.instance;
  fallback : bool;
  impl : impl;
}

type t = {
  registry : Meta_document.registry;
  indexes : built array;
  build_ns : int64;
  reused : int;
  extended : int;
}

(* Structural digest of a meta document: equal digests mean the local
   index answers identically, so an old instance can be reused. The
   out/in link arrays are NOT part of the digest — they live on the meta
   document, not in the index — but the node set pins the global ids so
   the link sets L_i are recomputed by the registry anyway.

   FNV-1a-style fold over the node ids, tags, and edges: explicit and
   deterministic across runs, where Hashtbl.hash would sample the deep
   structure polymorphically (FL003) and truncate to 30 bits. *)
let fnv_basis = 0x3f29ce484222325
let fnv_prime = 0x100000001b3
let fnv_mix h x = (h lxor x) * fnv_prime

let digest (m : Meta_document.t) =
  let h = ref fnv_basis in
  let add x = h := fnv_mix !h x in
  add (Array.length m.Meta_document.nodes);
  Array.iter add m.Meta_document.nodes;
  Array.iter add m.Meta_document.tag;
  List.iter
    (fun (u, v) ->
      add u;
      add v)
    (Fx_graph.Digraph.edges m.Meta_document.graph);
  !h land max_int

let equal_structure (a : Meta_document.t) (b : Meta_document.t) =
  a.Meta_document.nodes = b.Meta_document.nodes
  && a.Meta_document.tag = b.Meta_document.tag
  && Fx_graph.Digraph.edges a.Meta_document.graph = Fx_graph.Digraph.edges b.Meta_document.graph

let instantiate strategy (m : Meta_document.t) dg =
  match (strategy : Strategy_selector.strategy) with
  | PPO -> Fx_index.Ppo.instance dg
  | HOPI { partition_size } -> Fx_index.Hopi.instance ~partition_size dg
  | HOPI_disk { dir } ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let path = Filename.concat dir (Printf.sprintf "meta_%04d" m.Meta_document.id) in
      Fx_index.Disk_hopi.instance ~path dg (Fx_index.Hopi.build dg)
  | APEX -> Fx_index.Apex.instance dg
  | TC -> Fx_index.Tc_index.instance dg

let build_one policy (m : Meta_document.t) =
  let dg = Meta_document.data_graph m in
  let requested = Strategy_selector.select policy m in
  match requested with
  | Strategy_selector.PPO ->
      (* Build the numbering directly so it can be handed to
         [Ppo.extend] on a later incremental rebuild. *)
      (match Fx_index.Ppo.build dg with
      | ppo ->
          {
            meta = m;
            strategy = requested;
            index = Fx_index.Ppo.instance_of ppo;
            fallback = false;
            impl = Ppo_tree ppo;
          }
      | exception Fx_index.Ppo.Not_a_forest ->
          let strategy = Strategy_selector.HOPI { partition_size = 5000 } in
          {
            meta = m;
            strategy;
            index = instantiate strategy m dg;
            fallback = true;
            impl = Opaque;
          })
  | _ ->
      let index = instantiate requested m dg in
      { meta = m; strategy = requested; index; fallback = false; impl = Opaque }

let build ?(policy = Strategy_selector.default_auto) ?reuse ?(jobs = 1)
    (registry : Meta_document.registry) =
  let watch = Fx_util.Stopwatch.start () in
  (* The reuse pool is fully populated before any worker reads it. *)
  let pool : (int, built list) Hashtbl.t = Hashtbl.create 64 in
  (match reuse with
  | None -> ()
  | Some old ->
      Array.iter
        (fun (b : built) ->
          let d = digest b.meta in
          Hashtbl.replace pool d (b :: Option.value ~default:[] (Hashtbl.find_opt pool d)))
        old.indexes);
  let reused = Atomic.make 0 in
  let extended = Atomic.make 0 in
  (* Delta pool: old PPO numberings that may be extendable in place when
     a meta document grew by appended subtrees (the single-meta-document
     configurations: one big tree gaining new documents). *)
  let ppo_pool =
    match reuse with
    | None -> []
    | Some old ->
        Array.to_list old.indexes
        |> List.filter_map (fun (b : built) ->
               match b.impl with Ppo_tree ppo -> Some (b.meta, ppo) | Opaque -> None)
  in
  let int_array_prefix a b =
    Array.length a < Array.length b
    &&
    try
      Array.iteri (fun i x -> if x <> b.(i) then raise Exit) a;
      true
    with Exit -> false
  in
  let try_extend (m : Meta_document.t) =
    match Strategy_selector.select policy m with
    | Strategy_selector.PPO ->
        List.find_map
          (fun ((om : Meta_document.t), ppo) ->
            if
              int_array_prefix om.Meta_document.nodes m.Meta_document.nodes
              && int_array_prefix om.Meta_document.tag m.Meta_document.tag
            then
              match Fx_index.Ppo.extend ppo (Meta_document.data_graph m) with
              | Some ppo' ->
                  Atomic.incr extended;
                  Some
                    {
                      meta = m;
                      strategy = Strategy_selector.PPO;
                      index = Fx_index.Ppo.instance_of ppo';
                      fallback = false;
                      impl = Ppo_tree ppo';
                    }
              | None -> None
            else None)
          ppo_pool
    | _ -> None
  in
  let build_or_reuse (m : Meta_document.t) =
    let candidates = Option.value ~default:[] (Hashtbl.find_opt pool (digest m)) in
    match List.find_opt (fun (b : built) -> equal_structure b.meta m) candidates with
    | Some b ->
        Atomic.incr reused;
        (* The structure matches but the link sets and the id may have
           changed; rebind the instance to the new meta document. *)
        { b with meta = m }
    | None -> (
        match try_extend m with Some b -> b | None -> build_one policy m)
  in
  (* Meta documents are independent, so building them is embarrassingly
     parallel; with [jobs > 1] a work-stealing counter hands them to
     OCaml 5 domains. Every slot is written by exactly one worker. *)
  let n = Array.length registry.metas in
  let results : built option array = Array.make n None in
  let cursor = Atomic.make 0 in
  let worker () =
    let continue = ref true in
    while !continue do
      let i = Atomic.fetch_and_add cursor 1 in
      if i >= n then continue := false
      else results.(i) <- Some (build_or_reuse registry.metas.(i))
    done
  in
  if jobs <= 1 then worker ()
  else begin
    let helpers = List.init (min (jobs - 1) 15) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join helpers
  end;
  let indexes =
    Array.map (function Some b -> b | None -> assert false) results
  in
  let t =
    {
      registry;
      indexes;
      build_ns = Fx_util.Stopwatch.elapsed_ns watch;
      reused = Atomic.get reused;
      extended = Atomic.get extended;
    }
  in
  Log.info (fun m ->
      m "built %d meta-document indexes (%d reused, %d extended in place) in %.1f ms"
        (Array.length indexes) t.reused t.extended
        (Int64.to_float t.build_ns /. 1e6));
  Array.iter
    (fun (b : built) ->
      if b.fallback then
        Log.warn (fun m ->
            m "meta document %d: requested strategy unusable, fell back to %s"
              b.meta.Meta_document.id
              (Strategy_selector.strategy_to_string b.strategy))
      else
        Log.debug (fun m ->
            m "meta document %d: %s over %d nodes (%d bytes)" b.meta.Meta_document.id
              (Strategy_selector.strategy_to_string b.strategy)
              (Meta_document.n_nodes b.meta)
              b.index.Path_index.stats.size_bytes))
    indexes;
  t

let reused_count t = t.reused
let extended_count t = t.extended

let total_size_bytes t =
  Array.fold_left (fun acc b -> acc + b.index.Path_index.stats.size_bytes) 0 t.indexes

let total_entries t =
  Array.fold_left (fun acc b -> acc + b.index.Path_index.stats.entries) 0 t.indexes

let strategy_histogram t =
  let tbl = Hashtbl.create 8 in
  Array.iter
    (fun b ->
      let key = Strategy_selector.strategy_to_string b.strategy in
      Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
    t.indexes;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> Int.compare b a)

let report t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%d meta documents, %d run-time links, %.2f MB of indexes (built in %.1f ms)\n"
       (Array.length t.indexes)
       (Meta_document.total_out_links t.registry)
       (float_of_int (total_size_bytes t) /. 1048576.0)
       (Int64.to_float t.build_ns /. 1e6));
  List.iter
    (fun (s, n) -> Buffer.add_string buf (Printf.sprintf "  %-10s %d meta documents\n" s n))
    (strategy_histogram t);
  let fallbacks = Array.fold_left (fun a b -> if b.fallback then a + 1 else a) 0 t.indexes in
  if fallbacks > 0 then
    Buffer.add_string buf (Printf.sprintf "  (%d strategy fallbacks to HOPI)\n" fallbacks);
  Buffer.contents buf
