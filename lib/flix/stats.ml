let error_rate ~true_dist nodes =
  match nodes with
  | [] -> 0.0
  | _ ->
      let dists = List.map true_dist nodes in
      (* A result is out of order when a strictly smaller true distance
         appears after it. Scan from the right with a running minimum. *)
      let arr = Array.of_list dists in
      let n = Array.length arr in
      let min_after = Array.make n max_int in
      for i = n - 2 downto 0 do
        min_after.(i) <- min min_after.(i + 1) arr.(i + 1)
      done;
      let wrong = ref 0 in
      for i = 0 to n - 1 do
        if min_after.(i) < arr.(i) then incr wrong
      done;
      float_of_int !wrong /. float_of_int n

let inversions ~true_dist nodes =
  let arr = Array.of_list (List.map true_dist nodes) in
  let n = Array.length arr in
  let count = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if arr.(j) < arr.(i) then incr count
    done
  done;
  !count

let inversion_rate ~true_dist nodes =
  let n = List.length nodes in
  if n < 2 then 0.0
  else
    float_of_int (inversions ~true_dist nodes) /. float_of_int (n * (n - 1) / 2)

let is_sorted_by_dist results =
  let rec go = function
    | (_, d1) :: ((_, d2) :: _ as rest) -> d1 <= d2 && go rest
    | [ _ ] | [] -> true
  in
  go results

let time_series trace ~ks =
  let arr = Array.of_list trace in
  List.filter_map
    (fun k -> if k >= 1 && k <= Array.length arr then Some (k, snd arr.(k - 1)) else None)
    ks

let mb bytes = float_of_int bytes /. 1048576.0

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let percentile p xs =
  match List.sort Float.compare xs with
  | [] -> invalid_arg "Stats.percentile: empty"
  | sorted ->
      let n = List.length sorted in
      let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
      List.nth sorted (max 0 (min (n - 1) (rank - 1)))
