(** The Index Builder (IB): builds one path index per meta document with
    the strategy chosen by the ISS, and keeps the per-meta-document link
    sets [L_i] (paper, Section 4.2).

    A PPO selection can fail if the selector was forced onto a non-forest
    meta document; the builder then falls back to HOPI and records the
    fallback, mirroring the paper's constraint that "certain algorithms
    to build meta documents may rule out the usage of some index
    strategies". *)

type impl = Ppo_tree of Fx_index.Ppo.t | Opaque
(** The concrete structure behind [index], when the builder keeps it
    around for incremental maintenance ({!Fx_index.Ppo.extend}). *)

type built = {
  meta : Meta_document.t;
  strategy : Strategy_selector.strategy;  (** what was actually built *)
  index : Fx_index.Path_index.instance;
  fallback : bool;  (** true when the requested strategy was unusable *)
  impl : impl;
}

type t = {
  registry : Meta_document.registry;
  indexes : built array;  (** indexed by meta-document id *)
  build_ns : int64;       (** accumulated wall-clock build time *)
  reused : int;           (** indexes taken over from a previous build *)
  extended : int;         (** indexes delta-extended in place *)
}

val build :
  ?policy:Strategy_selector.policy -> ?reuse:t -> ?jobs:int -> Meta_document.registry -> t
(** [reuse] enables incremental rebuilds: a meta document of the new
    registry whose node set, internal edges and tags are identical to
    one in the previous build keeps that build's index instead of
    reindexing. With document-granular configurations, adding documents
    to a collection leaves the untouched meta documents' digests stable,
    so only new or newly-linked-into partitions pay the build cost (see
    {!Flix.extend}). Matching is by structural digest, so it is safe
    under partition renumbering.

    [jobs] (default 1) builds that many meta-document indexes in
    parallel on OCaml 5 domains — meta documents are independent, so
    the speed-up is near-linear until memory bandwidth wins. *)

val reused_count : t -> int
(** How many meta-document indexes were taken over from [reuse]. *)

val extended_count : t -> int
(** How many meta-document indexes were produced by per-index delta
    application ({!Fx_index.Ppo.extend}) instead of a full rebuild: the
    meta document grew by appended subtrees and only the appended part
    was traversed. Together with {!reused_count} this is the build
    counter showing a meta-document-local delta did not rebuild
    untouched indexes. *)

val total_size_bytes : t -> int
val total_entries : t -> int
val strategy_histogram : t -> (string * int) list
(** How many meta documents each strategy indexes, descending count. *)

val report : t -> string
(** Multi-line build report: strategies, sizes, link counts. *)
