module Lru = Fx_util.Lru

type key = { start : int; tag : int option; max_dist : int }

type t = {
  pee : Pee.t;
  cache : (key, Pee.item list) Lru.t;
  capacity : int;
  max_results : int;
}

let create ?(capacity = 256) ?(max_results = 10_000) pee =
  { pee; cache = Lru.create ~capacity (); capacity; max_results }

let stream_of_list items =
  let rest = ref items in
  Result_stream.of_fn (fun () ->
      match !rest with
      | [] -> None
      | x :: tl ->
          rest := tl;
          Some x)

let descendants ?tag ?(max_dist = max_int) t ~start =
  let key = { start; tag; max_dist } in
  match Lru.find t.cache key with
  | Some items -> stream_of_list items
  | None ->
      (* Materialise lazily: only when the stream is first pulled does
         the evaluation run, and only a fully drained result list is
         worth caching (a truncated one is incomplete). *)
      let materialised =
        lazy
          (let items =
             Result_stream.to_list (Pee.descendants ?tag ~max_dist t.pee ~start)
           in
           if List.length items <= t.max_results then Lru.add t.cache key items;
           items)
      in
      let rest = ref None in
      Result_stream.of_fn (fun () ->
          let r = match !rest with Some r -> r | None -> ref (Lazy.force materialised) in
          rest := Some r;
          match !r with
          | [] -> None
          | x :: tl ->
              r := tl;
              Some x)

let invalidate t = Lru.clear t.cache

(* Scoped invalidation: an entry restricted to a tag the delta did not
   touch still lists exactly the right nodes (ids are stable and no new
   link reaches the old range when the scope is tag-bounded), so only
   entries on touched tags — and wildcard entries, which may contain any
   tag — have to go. *)
let invalidate_tags t tags =
  let doomed = ref [] in
  Lru.iter t.cache (fun key _ ->
      let touched =
        match key.tag with None -> true | Some tg -> List.exists (Int.equal tg) tags
      in
      if touched then doomed := key :: !doomed);
  List.iter (Lru.remove t.cache) !doomed

let rebase t ~pee ~keep =
  let fresh =
    {
      pee;
      cache = Lru.create ~capacity:t.capacity ();
      capacity = t.capacity;
      max_results = t.max_results;
    }
  in
  Lru.iter t.cache (fun key items ->
      if keep ~tag:key.tag then Lru.add fresh.cache key items);
  fresh

type cache_stats = { entries : int; hits : int; misses : int; hit_rate : float }

let stats t =
  let hits = Lru.hits t.cache and misses = Lru.misses t.cache in
  {
    entries = Lru.length t.cache;
    hits;
    misses;
    hit_rate =
      (if hits + misses = 0 then 0.0
       else float_of_int hits /. float_of_int (hits + misses));
  }
